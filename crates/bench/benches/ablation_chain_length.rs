//! **Ablation** — path-length scaling and topology diversity.
//!
//! The paper motivates entanglement distillation (§4.3) by noting that
//! the fidelity loss of entanglement swapping "ultimately limits the
//! achievable path length". This sweep quantifies that limit in our
//! model: per-pair latency, the link-fidelity budget the routing
//! controller demands, and the point where a fixed end-to-end target
//! becomes infeasible.
//!
//! A second section sweeps the **widened dumbbell** (the sweep runner's
//! scenario-diversity axis): `width` straight-across circuits all
//! contending for the single MA–MB bottleneck, one request each.
//!
//! Run: `cargo bench --bench ablation_chain_length`
//! (knobs: `QNP_RUNS`, `QNP_THREADS`).

use qn_bench::{
    chain_sweep, mean_finite, runs, seed_block, wide_dumbbell_sweep, Baseline, Direction,
};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_routing::{chain, Controller, CutoffPolicy};
use qn_sim::{NodeId, SimDuration};

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    let fidelity = 0.8;
    let seeds = seed_block(7000, n_runs);
    println!("# Ablation — chain-length scaling at end-to-end F = {fidelity} (runs={n_runs})");
    println!("# nodes   links   link_F_budget   per_pair_latency_s   mean_fidelity");

    let mut baseline = Baseline::new("ablation_chain_length")
        .config_num("runs", n_runs as f64)
        .config_num("fidelity", fidelity)
        .direction("link_fidelity_budget", Direction::Informational)
        .direction("per_pair_latency_s", Direction::LowerIsBetter)
        .direction("mean_request_latency_s", Direction::LowerIsBetter)
        .direction("mean_fidelity", Direction::HigherIsBetter)
        .direction("completed", Direction::HigherIsBetter)
        .direction(
            "aggregate_throughput_pairs_per_s",
            Direction::HigherIsBetter,
        );

    for n_nodes in [2usize, 3, 4, 5, 6] {
        let topology = chain(n_nodes, HardwareParams::simulation(), FibreParams::lab_2m());
        let controller = Controller::new(&topology, CutoffPolicy::short());
        let tail = NodeId(n_nodes as u32 - 1);
        let plan = match controller.plan(NodeId(0), tail, fidelity) {
            Ok(p) => p,
            Err(e) => {
                println!("{n_nodes:7}   {:5}   infeasible: {e}", n_nodes - 1);
                baseline.point(
                    format!("chain/nodes={n_nodes}"),
                    &[
                        ("link_fidelity_budget", f64::NAN),
                        ("per_pair_latency_s", f64::NAN),
                        ("mean_fidelity", f64::NAN),
                    ],
                );
                continue;
            }
        };
        let n_pairs = 8u64;
        let points = chain_sweep(
            &seeds,
            n_nodes,
            &plan,
            fidelity,
            n_pairs,
            SimDuration::from_secs(300),
        );
        let latency = mean_finite(points.iter().map(|p| p.per_pair_latency));
        let fid = mean_finite(points.iter().map(|p| p.mean_fidelity));
        let n_links = n_nodes - 1;
        println!(
            "{n_nodes:7}   {n_links:5}   {:13.4}   {latency:18.3}   {fid:13.4}",
            plan.link_fidelity
        );
        baseline.point(
            format!("chain/nodes={n_nodes}"),
            &[
                ("link_fidelity_budget", plan.link_fidelity),
                ("per_pair_latency_s", latency),
                ("mean_fidelity", fid),
            ],
        );
    }
    println!("#\n# expected shape: the link budget climbs towards the hardware's");
    println!("# maximum as the chain grows; per-pair latency grows super-linearly;");
    println!("# past the feasibility wall only distillation (paper §4.3) helps.");

    // ---- scenario diversity: widened dumbbells --------------------------
    println!("#\n# widened dumbbell — `width` straight-across circuits over one bottleneck");
    println!("# width   completed   mean_latency_s   aggregate_thr_pairs_per_s");
    let div_seeds = seed_block(7500, n_runs);
    for width in [1usize, 2, 3, 4] {
        let points = wide_dumbbell_sweep(
            &div_seeds,
            width,
            8,
            fidelity,
            CutoffPolicy::short(),
            SimDuration::from_secs(120),
        );
        let completed: usize = points.iter().map(|p| p.completed).sum();
        let circuits: usize = points.iter().map(|p| p.circuits).sum();
        let lat = mean_finite(points.iter().map(|p| p.mean_latency));
        let thr = points.iter().map(|p| p.aggregate_throughput).sum::<f64>() / n_runs as f64;
        println!("{width:5}   {completed:6}/{circuits}   {lat:14.3}   {thr:25.2}");
        baseline.point(
            format!("wide_dumbbell/width={width}"),
            &[
                ("completed", completed as f64),
                // Whole-request latency (8 pairs), not the chain
                // section's per-pair unit.
                ("mean_request_latency_s", lat),
                ("aggregate_throughput_pairs_per_s", thr),
            ],
        );
    }
    println!("#\n# expected shape: aggregate throughput saturates at the bottleneck");
    println!("# rate while per-request latency grows with the width.");

    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
