//! **Figure 10** — robustness against decoherence.
//!
//! * (a,b): throughput of two competing circuits (A0-B0 at F=0.9, A1-B1
//!   at F=0.8) as the memory lifetime T2* shrinks, for the QNP's cutoff
//!   mechanism vs the oracle baseline ("simpler protocol" that discards
//!   end-to-end pairs below fidelity using the simulation's backdoor).
//! * (c): throughput vs injected classical message delay at T2* ≈ 1.6 s;
//!   the dashed vertical line in the paper is the cutoff value.
//!
//! Paper shapes to reproduce: throughput falls with T2*; the F=0.9
//! circuit is hit harder ("low, but not zero"); the cutoff beats the
//! oracle; delay has no effect until it approaches the cutoff.
//!
//! Run: `cargo bench --bench fig10_decoherence` (knobs: `QNP_RUNS`
//! default 3, `QNP_THREADS` sweep workers).

use qn_bench::{fig10ab_sweep, fig10c_sweep, runs, seed_block, Baseline, Direction, Fig10Variant};
use qn_sim::SimDuration;

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    println!("# Figure 10 — decoherence robustness (runs={n_runs})");

    let mut baseline = Baseline::new("fig10_decoherence")
        .config_num("runs", n_runs as f64)
        .direction("thr_f09_pairs_per_s", Direction::HigherIsBetter)
        .direction("thr_f08_pairs_per_s", Direction::HigherIsBetter)
        .direction("good_f09", Direction::HigherIsBetter)
        .direction("good_f08", Direction::HigherIsBetter)
        .direction("raw_f09", Direction::Informational)
        .direction("raw_f08", Direction::Informational)
        .direction("cutoff_s", Direction::Informational);

    // ---- panels (a, b): throughput vs memory lifetime ------------------
    let t2_values = [0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 60.0];
    let ab_seeds = seed_block(3000, n_runs);
    let mut cutoff_thr_at_min = [0.0f64; 2];
    let mut oracle_thr_at_min = [0.0f64; 2];
    for variant in [Fig10Variant::Cutoff, Fig10Variant::OracleBaseline] {
        let variant_key = match variant {
            Fig10Variant::Cutoff => "cutoff",
            Fig10Variant::OracleBaseline => "oracle",
        };
        println!(
            "#\n# panel a/b — variant: {}",
            match variant {
                Fig10Variant::Cutoff => "QNP cutoff",
                Fig10Variant::OracleBaseline => "oracle baseline (no cutoff, oracle filter)",
            }
        );
        println!("# T2_s   thr_F0.9_pairs_per_s   thr_F0.8_pairs_per_s");
        for (i, t2) in t2_values.iter().enumerate() {
            let points = fig10ab_sweep(&ab_seeds, *t2, variant);
            let a = points.iter().map(|p| p.thr_f09).sum::<f64>() / n_runs as f64;
            let b = points.iter().map(|p| p.thr_f08).sum::<f64>() / n_runs as f64;
            println!("{t2:6.2}   {a:20.2}   {b:20.2}");
            baseline.point(
                format!("ab/{variant_key}/t2={t2}"),
                &[("thr_f09_pairs_per_s", a), ("thr_f08_pairs_per_s", b)],
            );
            if i == 0 {
                match variant {
                    Fig10Variant::Cutoff => cutoff_thr_at_min = [a, b],
                    Fig10Variant::OracleBaseline => oracle_thr_at_min = [a, b],
                }
            }
        }
    }

    // ---- panel (c): throughput vs message delay ------------------------
    println!("#\n# panel c — throughput vs extra per-hop message delay (T2*=1.6 s)");
    println!("# delay_ms   good_F0.9   good_F0.8   raw_F0.9   raw_F0.8");
    let delays_ms = [0u64, 1, 2, 5, 10, 15, 20, 30, 50, 100];
    let c_seeds = seed_block(4000, n_runs);
    let mut series_good = Vec::new();
    let mut cutoff_line = f64::NAN;
    for delay in delays_ms {
        let points = fig10c_sweep(&c_seeds, SimDuration::from_millis(delay));
        let mut good = [0.0f64; 2];
        let mut raw = [0.0f64; 2];
        for p in &points {
            good[0] += p.good[0];
            good[1] += p.good[1];
            raw[0] += p.raw[0];
            raw[1] += p.raw[1];
            cutoff_line = p.cutoff_s;
        }
        for v in good.iter_mut().chain(raw.iter_mut()) {
            *v /= n_runs as f64;
        }
        println!(
            "{delay:8}   {:9.2}   {:9.2}   {:8.2}   {:8.2}",
            good[0], good[1], raw[0], raw[1]
        );
        baseline.point(
            format!("c/delay_ms={delay}"),
            &[
                ("good_f09", good[0]),
                ("good_f08", good[1]),
                ("raw_f09", raw[0]),
                ("raw_f08", raw[1]),
                ("cutoff_s", cutoff_line),
            ],
        );
        series_good.push((delay as f64 / 1000.0, good[0]));
    }
    println!(
        "# cutoff (dashed line in the paper): {:.1} ms",
        cutoff_line * 1e3
    );

    // ---- shape checks ---------------------------------------------------
    println!("#\n# shape checks");
    let better = cutoff_thr_at_min[0] >= oracle_thr_at_min[0]
        && cutoff_thr_at_min[1] >= oracle_thr_at_min[1];
    println!(
        "# cutoff ≥ oracle at shortest T2 ({:.2},{:.2}) vs ({:.2},{:.2}): {}",
        cutoff_thr_at_min[0],
        cutoff_thr_at_min[1],
        oracle_thr_at_min[0],
        oracle_thr_at_min[1],
        if better { "PASS" } else { "WARN" }
    );
    // Delay robustness: useful throughput before the cutoff ≈ at zero
    // delay; beyond the cutoff it collapses.
    let at_zero = series_good.first().map(|p| p.1).unwrap_or(f64::NAN);
    let below: Vec<f64> = series_good
        .iter()
        .filter(|(d, _)| *d < cutoff_line * 0.5)
        .map(|(_, g)| *g)
        .collect();
    let above: Vec<f64> = series_good
        .iter()
        .filter(|(d, _)| *d > cutoff_line * 2.0)
        .map(|(_, g)| *g)
        .collect();
    let flat = below.iter().all(|g| *g > 0.6 * at_zero);
    let drop = above.iter().all(|g| *g < 0.5 * at_zero);
    println!(
        "# delay below cutoff leaves useful throughput intact: {}",
        if flat { "PASS" } else { "WARN" }
    );
    println!(
        "# delay beyond cutoff collapses useful throughput: {}",
        if drop { "PASS" } else { "WARN" }
    );

    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
