//! Shrink trees: the data structure behind counterexample minimisation.
//!
//! Every strategy samples a [`ShrinkTree`] — a rose tree whose root is
//! the generated value and whose children enumerate *simpler* candidate
//! values, lazily (the Hedgehog design, rather than real proptest's
//! `simplify`/`complicate` cursor). Children are deterministic functions
//! of the sampled structure: no RNG is consulted while shrinking, so a
//! failing case minimises to the same counterexample on every run.
//!
//! [`minimize`] performs the greedy descent the runner uses: repeatedly
//! move to the first child that still fails the property, stopping at a
//! local minimum (no child fails) or at the iteration cap.

use std::rc::Rc;

/// A lazily-expanded rose tree of progressively simpler values.
pub struct ShrinkTree<V> {
    value: V,
    children: Rc<dyn Fn() -> Vec<ShrinkTree<V>>>,
}

impl<V: Clone> Clone for ShrinkTree<V> {
    fn clone(&self) -> Self {
        ShrinkTree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<V: 'static> ShrinkTree<V> {
    /// A tree with no simplifications (already minimal).
    pub fn leaf(value: V) -> Self {
        ShrinkTree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree whose candidate simplifications are produced on demand.
    /// Candidates must be *strictly simpler* so greedy descent makes
    /// progress; order them most-aggressive first for fast shrinking.
    pub fn with_children(value: V, children: impl Fn() -> Vec<ShrinkTree<V>> + 'static) -> Self {
        ShrinkTree {
            value,
            children: Rc::new(children),
        }
    }

    /// The value at this node.
    pub fn value(&self) -> &V {
        &self.value
    }

    /// Take the value, dropping the shrink structure.
    pub fn into_value(self) -> V {
        self.value
    }

    /// Expand this node's candidate simplifications.
    pub fn children(&self) -> Vec<ShrinkTree<V>> {
        (self.children)()
    }
}

impl<V: Clone + 'static> ShrinkTree<V> {
    /// Map the tree functorially — this is what lets `prop_map` shrink:
    /// the *source* tree shrinks, and every node is pushed through `f`.
    pub fn map<O: Clone + 'static>(&self, f: Rc<dyn Fn(V) -> O>) -> ShrinkTree<O> {
        let value = f(self.value.clone());
        let source = self.clone();
        ShrinkTree::with_children(value, move || {
            source
                .children()
                .into_iter()
                .map(|child| child.map(Rc::clone(&f)))
                .collect()
        })
    }

    /// Constrain shrinking to values accepted by `pred` —
    /// `prop_filter` shrinking never proposes filtered-out values.
    /// Rejected candidates are skipped *through*: their own (accepted)
    /// simplifications are promoted in their place, up to a budget, so
    /// a sparse filter domain does not stall the descent.
    pub fn prune(&self, pred: Rc<dyn Fn(&V) -> bool>) -> ShrinkTree<V> {
        let source = self.clone();
        ShrinkTree::with_children(self.value.clone(), move || {
            let mut out = Vec::new();
            let mut queue: std::collections::VecDeque<ShrinkTree<V>> = source.children().into();
            let mut budget = 256usize;
            while let Some(candidate) = queue.pop_front() {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                if pred(candidate.value()) {
                    out.push(candidate.prune(Rc::clone(&pred)));
                } else {
                    queue.extend(candidate.children());
                }
            }
            out
        })
    }
}

/// Join two trees into a pair tree: either component may shrink while
/// the other is held fixed. Larger tuples are built by nesting.
pub fn join2<A, B>(ta: ShrinkTree<A>, tb: ShrinkTree<B>) -> ShrinkTree<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let value = (ta.value().clone(), tb.value().clone());
    ShrinkTree::with_children(value, move || {
        let mut out = Vec::new();
        for ca in ta.children() {
            out.push(join2(ca, tb.clone()));
        }
        for cb in tb.children() {
            out.push(join2(ta.clone(), cb));
        }
        out
    })
}

/// Build a `Vec` tree from element trees. Candidates, most aggressive
/// first: remove chunks of elements (halving the chunk size down to 1,
/// never dropping below `min_len`), then shrink individual elements in
/// place. One-element removals are always offered, so a greedy local
/// minimum is genuinely minimal in length: removing *any single
/// element* from it makes the property pass.
pub fn vec_tree<E: Clone + 'static>(
    elems: Vec<ShrinkTree<E>>,
    min_len: usize,
) -> ShrinkTree<Vec<E>> {
    let value: Vec<E> = elems.iter().map(|t| t.value().clone()).collect();
    ShrinkTree::with_children(value, move || {
        let len = elems.len();
        let mut out = Vec::new();
        // 1) Structural shrinks: drop a chunk of elements.
        let mut chunk = len.saturating_sub(min_len);
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= len {
                let mut kept = Vec::with_capacity(len - chunk);
                kept.extend_from_slice(&elems[..start]);
                kept.extend_from_slice(&elems[start + chunk..]);
                out.push(vec_tree(kept, min_len));
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // 2) Element shrinks: simplify one element, keep the rest.
        for (i, elem) in elems.iter().enumerate() {
            for child in elem.children() {
                let mut next = elems.clone();
                next[i] = child;
                out.push(vec_tree(next, min_len));
            }
        }
        out
    })
}

/// Halving descent toward `origin` over `i128` (covers every integer
/// width in the workspace). Candidates: the origin itself, the halfway
/// point, and the single-step neighbour — so a local minimum `v` means
/// even `v ∓ 1` passes the property.
pub fn int_tree(origin: i128, value: i128) -> ShrinkTree<i128> {
    ShrinkTree::with_children(value, move || {
        let delta = value - origin;
        if delta == 0 {
            return Vec::new();
        }
        let step = if delta > 0 { value - 1 } else { value + 1 };
        let mut candidates = vec![origin, origin + delta / 2, step];
        candidates.dedup();
        candidates.retain(|c| *c != value);
        candidates
            .into_iter()
            .map(|c| int_tree(origin, c))
            .collect()
    })
}

/// Depth-bounded halving toward `origin` for floats (unbounded halving
/// never terminates; 24 levels is plenty to pin down a boundary).
pub fn float_tree(origin: f64, value: f64, depth: u32) -> ShrinkTree<f64> {
    ShrinkTree::with_children(value, move || {
        if depth == 0 || !(value > origin) {
            return Vec::new();
        }
        let mut out = vec![ShrinkTree::leaf(origin)];
        let mid = origin + (value - origin) / 2.0;
        if mid > origin && mid < value {
            out.push(float_tree(origin, mid, depth - 1));
        }
        out
    })
}

/// Shrink statistics reported alongside a minimised counterexample.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Property executions spent probing candidates.
    pub executions: u64,
    /// Candidates accepted (each strictly simplified the counterexample).
    pub accepted: u64,
}

/// Greedy minimisation: starting from a failing `tree`, repeatedly move
/// to the first child whose value still fails (per `still_fails`,
/// returning the new failure message), until no child fails (a local
/// minimum) or `max_iters` executions have been spent. Returns the
/// minimal value, the failure message observed at it, and stats.
pub fn minimize<V: Clone + 'static>(
    tree: ShrinkTree<V>,
    initial_message: String,
    max_iters: u64,
    mut still_fails: impl FnMut(&V) -> Option<String>,
) -> (V, String, ShrinkStats) {
    let mut current = tree;
    let mut message = initial_message;
    let mut stats = ShrinkStats::default();
    'descend: loop {
        for child in current.children() {
            if stats.executions >= max_iters {
                break 'descend;
            }
            stats.executions += 1;
            if let Some(msg) = still_fails(child.value()) {
                stats.accepted += 1;
                message = msg;
                current = child;
                continue 'descend;
            }
        }
        break;
    }
    (current.into_value(), message, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_tree_reaches_origin() {
        let (min, _, _) = minimize(int_tree(0, 1000), String::new(), 10_000, |_| {
            Some(String::new())
        });
        assert_eq!(min, 0, "everything fails => shrink all the way to origin");
    }

    #[test]
    fn int_tree_finds_boundary() {
        let (min, _, stats) = minimize(int_tree(0, 977), String::new(), 10_000, |v| {
            (*v >= 10).then(|| String::new())
        });
        assert_eq!(min, 10, "local minimum of `v >= 10` must be exactly 10");
        assert!(stats.accepted > 0);
    }

    #[test]
    fn vec_tree_minimises_length() {
        let elems: Vec<ShrinkTree<i128>> = (0..37).map(|v| int_tree(0, v)).collect();
        let (min, _, _) = minimize(
            vec_tree(elems, 0),
            String::new(),
            100_000,
            |v: &Vec<i128>| (v.len() >= 3).then(|| String::new()),
        );
        assert_eq!(min.len(), 3);
        assert_eq!(min, vec![0, 0, 0], "elements shrink after the length does");
    }

    #[test]
    fn float_tree_terminates() {
        let (min, _, _) = minimize(float_tree(0.0, 1.0, 24), String::new(), 10_000, |_| {
            Some(String::new())
        });
        assert_eq!(min, 0.0);
    }

    #[test]
    fn minimize_respects_iteration_cap() {
        // Only the v-1 candidate ever fails, so the descent crawls one
        // step per level and must be stopped by the cap.
        let mut runs = 0u64;
        let (min, _, stats) = minimize(int_tree(0, 1000), String::new(), 7, |v| {
            runs += 1;
            (*v >= 900).then(String::new)
        });
        assert_eq!(stats.executions, 7);
        assert_eq!(runs, 7);
        assert!(min >= 900, "descent stopped early, still failing region");
    }
}
