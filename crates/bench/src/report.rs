//! Machine-readable benchmark baselines.
//!
//! Every figure bench emits, alongside its plain-text rows, a JSON
//! baseline at `<QNP_BASELINE_DIR>/<figure>.json` (default
//! `target/qnp-bench/`) recording the run configuration, one record per
//! plotted point, and run metadata. `cargo run --example bench_diff`
//! compares two baseline directories and flags throughput/latency
//! regressions; CI runs it against the committed `baselines/` reference.
//!
//! The build environment has no crates.io access, so the JSON encoder
//! and parser are hand-rolled here. Numbers are formatted with Rust's
//! shortest round-trip representation (`{:?}`), which makes the emitted
//! point values **bit-identical** across runs and thread counts as long
//! as the simulation itself is deterministic. NaN (e.g. "no requests
//! completed") encodes as `null`.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// JSON value
// ---------------------------------------------------------------------

/// A JSON value. Objects preserve insertion order so emitted baselines
/// are deterministic and diff cleanly in git.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values encode as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value; `null` reads back as NaN (the inverse of encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialise with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escapes unsupported")?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------

/// Which way a metric should move to count as an improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// e.g. throughput, completed requests.
    HigherIsBetter,
    /// e.g. latency, wall-clock.
    LowerIsBetter,
    /// Recorded but never flagged as a regression (e.g. a cutoff value).
    Informational,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher_is_better",
            Direction::LowerIsBetter => "lower_is_better",
            Direction::Informational => "informational",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "higher_is_better" => Some(Direction::HigherIsBetter),
            "lower_is_better" => Some(Direction::LowerIsBetter),
            "informational" => Some(Direction::Informational),
            _ => None,
        }
    }
}

/// One plotted point: a label (the x-coordinate / panel / series) and
/// its metric values.
#[derive(Clone, Debug, PartialEq)]
pub struct PointRecord {
    /// Stable identifier, e.g. `"empty/interval_ms=500"`.
    pub label: String,
    /// Metric name → value, insertion-ordered.
    pub metrics: Vec<(String, f64)>,
}

/// A figure's machine-readable baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// The figure/bench name; also the output file stem.
    pub figure: String,
    /// Knob settings the run was produced with.
    pub config: Vec<(String, Json)>,
    /// Per-metric improvement direction (drives regression flagging).
    pub directions: Vec<(String, Direction)>,
    /// One record per plotted point, in plot order.
    pub points: Vec<PointRecord>,
    /// Run metadata (timestamps, thread counts…); never diffed.
    pub meta: Vec<(String, Json)>,
}

impl Baseline {
    /// Start a baseline for `figure`.
    pub fn new(figure: &str) -> Self {
        Baseline {
            figure: figure.to_string(),
            config: Vec::new(),
            directions: Vec::new(),
            points: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Record a config knob.
    pub fn config_num(mut self, key: &str, value: f64) -> Self {
        self.config.push((key.to_string(), Json::Num(value)));
        self
    }

    /// Record a string config knob.
    pub fn config_str(mut self, key: &str, value: &str) -> Self {
        self.config
            .push((key.to_string(), Json::Str(value.to_string())));
        self
    }

    /// Attach a numeric metadata entry (recorded, never diffed).
    pub fn meta_num(mut self, key: &str, value: f64) -> Self {
        self.meta.push((key.into(), Json::Num(value)));
        self
    }

    /// Attach a string metadata entry (recorded, never diffed).
    pub fn meta_str(mut self, key: &str, value: &str) -> Self {
        self.meta.push((key.into(), Json::Str(value.into())));
        self
    }

    /// Declare a metric's improvement direction.
    pub fn direction(mut self, metric: &str, direction: Direction) -> Self {
        self.directions.push((metric.to_string(), direction));
        self
    }

    /// Append a point record.
    pub fn point(&mut self, label: impl Into<String>, metrics: &[(&str, f64)]) {
        self.points.push(PointRecord {
            label: label.into(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// The direction declared for `metric` (default: informational).
    pub fn direction_of(&self, metric: &str) -> Direction {
        self.directions
            .iter()
            .find(|(m, _)| m == metric)
            .map(|(_, d)| *d)
            .unwrap_or(Direction::Informational)
    }

    /// Serialise to the baseline JSON schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("figure".into(), Json::Str(self.figure.clone())),
            ("config".into(), Json::Obj(self.config.clone())),
            (
                "directions".into(),
                Json::Obj(
                    self.directions
                        .iter()
                        .map(|(m, d)| (m.clone(), Json::Str(d.as_str().into())))
                        .collect(),
                ),
            ),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(p.label.clone())),
                                (
                                    "metrics".into(),
                                    Json::Obj(
                                        p.metrics
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("meta".into(), Json::Obj(self.meta.clone())),
        ])
    }

    /// Parse a baseline from its JSON schema.
    pub fn from_json(json: &Json) -> Result<Baseline, String> {
        let figure = json
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("baseline missing \"figure\"")?
            .to_string();
        let config = json
            .get("config")
            .and_then(Json::as_obj)
            .unwrap_or(&[])
            .to_vec();
        let directions = json
            .get("directions")
            .and_then(Json::as_obj)
            .unwrap_or(&[])
            .iter()
            .map(|(m, v)| {
                let d = v
                    .as_str()
                    .and_then(Direction::from_str)
                    .ok_or_else(|| format!("bad direction for metric {m:?}"))?;
                Ok((m.clone(), d))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mut points = Vec::new();
        for p in json
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("baseline missing \"points\"")?
        {
            let label = p
                .get("label")
                .and_then(Json::as_str)
                .ok_or("point missing \"label\"")?
                .to_string();
            let metrics = p
                .get("metrics")
                .and_then(Json::as_obj)
                .ok_or("point missing \"metrics\"")?
                .iter()
                .map(|(k, v)| {
                    let x = v
                        .as_f64()
                        .ok_or_else(|| format!("metric {k:?} is not a number"))?;
                    Ok((k.clone(), x))
                })
                .collect::<Result<Vec<_>, String>>()?;
            points.push(PointRecord { label, metrics });
        }
        let meta = json
            .get("meta")
            .and_then(Json::as_obj)
            .unwrap_or(&[])
            .to_vec();
        Ok(Baseline {
            figure,
            config,
            directions,
            points,
            meta,
        })
    }

    /// Parse from raw JSON text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        Baseline::from_json(&Json::parse(text)?)
    }

    /// Write to `<dir>/<figure>.json`, creating the directory. Standard
    /// run metadata (engine thread count, timestamp, crate version) is
    /// stamped in here.
    pub fn write_to(&mut self, dir: &Path) -> io::Result<PathBuf> {
        self.stamp_meta();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        std::fs::write(&path, self.to_json().to_pretty_string())?;
        Ok(path)
    }

    /// Write to the default baseline directory ([`baseline_dir`]).
    pub fn write(&mut self) -> io::Result<PathBuf> {
        self.write_to(&baseline_dir())
    }

    fn stamp_meta(&mut self) {
        if self.meta.iter().any(|(k, _)| k == "qnp_threads") {
            return; // already stamped (re-write of the same baseline)
        }
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as f64)
            .unwrap_or(0.0);
        self.meta
            .push(("qnp_threads".into(), Json::Num(qn_exec::threads() as f64)));
        self.meta
            .push(("generated_at_unix".into(), Json::Num(unix_secs)));
        self.meta.push((
            "qn_bench_version".into(),
            Json::Str(env!("CARGO_PKG_VERSION").into()),
        ));
    }
}

/// The baseline output directory: `QNP_BASELINE_DIR`, default
/// `target/qnp-bench` under the workspace root (anchored at compile
/// time — bench executables run with the package dir, not the
/// workspace root, as their cwd).
pub fn baseline_dir() -> PathBuf {
    std::env::var_os("QNP_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/qnp-bench"))
}

// ---------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------

/// How one metric moved between two baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Worse than the reference beyond tolerance, per the metric's
    /// declared direction.
    Regression,
    /// Better than the reference beyond tolerance.
    Improvement,
    /// Moved beyond tolerance, no direction declared (or NaN ↔ value).
    Change,
    /// Point or metric present in the reference but not the candidate.
    Missing,
    /// Point or metric present in the candidate but not the reference.
    New,
}

/// One flagged metric movement.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Point label the metric belongs to.
    pub point: String,
    /// Metric name.
    pub metric: String,
    /// Reference value (NaN when [`DiffKind::New`]).
    pub reference: f64,
    /// Candidate value (NaN when [`DiffKind::Missing`]).
    pub candidate: f64,
    /// `(candidate - reference) / |reference|` (NaN if undefined).
    pub rel_change: f64,
    /// Classification.
    pub kind: DiffKind,
}

/// The comparison of one figure's baselines.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Flagged entries, in point order.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Number of regressions.
    pub fn regressions(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == DiffKind::Regression)
            .count()
    }

    /// Number of reference points/metrics absent from the candidate —
    /// structural coverage loss, which a blocking gate should also fail
    /// on (a metric that vanishes can't regress any other way).
    pub fn missing(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == DiffKind::Missing)
            .count()
    }

    /// True if nothing moved beyond tolerance at all.
    pub fn is_clean(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Compare `candidate` against `reference`: every metric of every point
/// whose relative movement exceeds `tolerance` is flagged, classified by
/// the metric's declared direction (the reference's declaration wins).
/// NaN ↔ NaN is never flagged; NaN ↔ value always is.
pub fn diff_baselines(reference: &Baseline, candidate: &Baseline, tolerance: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let find = |b: &Baseline, label: &str| -> Option<PointRecord> {
        b.points.iter().find(|p| p.label == label).cloned()
    };

    let mut labels: Vec<String> = Vec::new();
    let mut seen = BTreeSet::new();
    for p in reference.points.iter().chain(&candidate.points) {
        if seen.insert(p.label.clone()) {
            labels.push(p.label.clone());
        }
    }

    for label in labels {
        let (rp, cp) = (find(reference, &label), find(candidate, &label));
        match (rp, cp) {
            (Some(rp), Some(cp)) => {
                let mut metrics: Vec<String> = Vec::new();
                let mut seen = BTreeSet::new();
                for (m, _) in rp.metrics.iter().chain(&cp.metrics) {
                    if seen.insert(m.clone()) {
                        metrics.push(m.clone());
                    }
                }
                for metric in metrics {
                    let rv = rp
                        .metrics
                        .iter()
                        .find(|(m, _)| *m == metric)
                        .map(|(_, v)| *v);
                    let cv = cp
                        .metrics
                        .iter()
                        .find(|(m, _)| *m == metric)
                        .map(|(_, v)| *v);
                    match (rv, cv) {
                        (Some(rv), Some(cv)) => {
                            if let Some(entry) =
                                classify(&label, &metric, rv, cv, reference, tolerance)
                            {
                                report.entries.push(entry);
                            }
                        }
                        (Some(rv), None) => report.entries.push(DiffEntry {
                            point: label.clone(),
                            metric,
                            reference: rv,
                            candidate: f64::NAN,
                            rel_change: f64::NAN,
                            kind: DiffKind::Missing,
                        }),
                        (None, Some(cv)) => report.entries.push(DiffEntry {
                            point: label.clone(),
                            metric,
                            reference: f64::NAN,
                            candidate: cv,
                            rel_change: f64::NAN,
                            kind: DiffKind::New,
                        }),
                        (None, None) => unreachable!("metric came from one of the two"),
                    }
                }
            }
            (Some(_), None) => report.entries.push(DiffEntry {
                point: label.clone(),
                metric: "*".into(),
                reference: f64::NAN,
                candidate: f64::NAN,
                rel_change: f64::NAN,
                kind: DiffKind::Missing,
            }),
            (None, Some(_)) => report.entries.push(DiffEntry {
                point: label.clone(),
                metric: "*".into(),
                reference: f64::NAN,
                candidate: f64::NAN,
                rel_change: f64::NAN,
                kind: DiffKind::New,
            }),
            (None, None) => unreachable!("label came from one of the two"),
        }
    }
    report
}

fn classify(
    label: &str,
    metric: &str,
    rv: f64,
    cv: f64,
    reference: &Baseline,
    tolerance: f64,
) -> Option<DiffEntry> {
    if rv.is_nan() && cv.is_nan() {
        return None;
    }
    let entry = |rel: f64, kind: DiffKind| DiffEntry {
        point: label.to_string(),
        metric: metric.to_string(),
        reference: rv,
        candidate: cv,
        rel_change: rel,
        kind,
    };
    if rv.is_nan() != cv.is_nan() {
        // A directional metric vanishing into NaN (e.g. "no request
        // completed any more") is the worst possible regression, not a
        // neutral change; NaN recovering into a value is the converse.
        let kind = match reference.direction_of(metric) {
            Direction::Informational => DiffKind::Change,
            _ if cv.is_nan() => DiffKind::Regression,
            _ => DiffKind::Improvement,
        };
        return Some(entry(f64::NAN, kind));
    }
    let rel = if rv == cv {
        0.0
    } else if rv == 0.0 {
        f64::INFINITY * (cv - rv).signum()
    } else {
        (cv - rv) / rv.abs()
    };
    if rel.abs() <= tolerance {
        return None;
    }
    let kind = match reference.direction_of(metric) {
        Direction::Informational => DiffKind::Change,
        Direction::HigherIsBetter => {
            if rel < 0.0 {
                DiffKind::Regression
            } else {
                DiffKind::Improvement
            }
        }
        Direction::LowerIsBetter => {
            if rel > 0.0 {
                DiffKind::Regression
            } else {
                DiffKind::Improvement
            }
        }
    };
    Some(entry(rel, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c".into(), Json::Str("x \"y\"\nz".into())),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Num(-3.0))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn f64_encoding_is_bit_exact() {
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -1.23456789e-200,
            9007199254740993.0,
        ] {
            let text = Json::Num(x).to_pretty_string();
            let back = Json::parse(text.trim()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x:?} via {text:?}");
        }
    }

    #[test]
    fn nan_encodes_as_null_and_reads_back_nan() {
        let text = Json::Num(f64::NAN).to_pretty_string();
        assert_eq!(text.trim(), "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline::new("fig_test")
            .config_num("runs", 3.0)
            .config_str("case", "empty")
            .direction("throughput", Direction::HigherIsBetter)
            .direction("latency_s", Direction::LowerIsBetter);
        b.point("x=1", &[("throughput", 4.25), ("latency_s", 0.5)]);
        b.point("x=2", &[("throughput", f64::NAN), ("latency_s", 0.75)]);
        let parsed = Baseline::parse(&b.to_json().to_pretty_string()).unwrap();
        assert_eq!(parsed.figure, "fig_test");
        assert_eq!(parsed.directions, b.directions);
        assert_eq!(parsed.points[0], b.points[0]);
        // NaN survives as NaN (PartialEq would fail, so check by hand).
        assert!(parsed.points[1].metrics[0].1.is_nan());
        assert_eq!(parsed.points[1].metrics[1].1, 0.75);
    }

    #[test]
    fn diff_flags_direction_aware_regressions() {
        let mut reference = Baseline::new("f")
            .direction("thr", Direction::HigherIsBetter)
            .direction("lat", Direction::LowerIsBetter);
        reference.point("p", &[("thr", 10.0), ("lat", 1.0)]);
        let mut candidate = reference.clone();
        candidate.points[0].metrics = vec![("thr".into(), 8.0), ("lat".into(), 1.3)];
        let report = diff_baselines(&reference, &candidate, 0.05);
        assert_eq!(report.regressions(), 2);
        // Improvements are flagged but not regressions.
        candidate.points[0].metrics = vec![("thr".into(), 12.0), ("lat".into(), 0.7)];
        let report = diff_baselines(&reference, &candidate, 0.05);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.entries.len(), 2);
        assert!(report
            .entries
            .iter()
            .all(|e| e.kind == DiffKind::Improvement));
    }

    #[test]
    fn value_vanishing_into_nan_is_a_regression() {
        let mut reference = Baseline::new("f")
            .direction("thr", Direction::HigherIsBetter)
            .direction("note", Direction::Informational);
        reference.point("p", &[("thr", 10.0), ("note", 1.0)]);
        let mut candidate = reference.clone();
        candidate.points[0].metrics = vec![("thr".into(), f64::NAN), ("note".into(), f64::NAN)];
        let report = diff_baselines(&reference, &candidate, 0.05);
        assert_eq!(report.regressions(), 1, "directional value -> NaN");
        assert!(report
            .entries
            .iter()
            .any(|e| e.metric == "note" && e.kind == DiffKind::Change));
        // And the converse: NaN recovering into a value is an improvement.
        let report = diff_baselines(&candidate, &reference, 0.05);
        assert_eq!(report.regressions(), 0);
        assert!(report
            .entries
            .iter()
            .any(|e| e.metric == "thr" && e.kind == DiffKind::Improvement));
    }

    #[test]
    fn diff_within_tolerance_is_clean() {
        let mut reference = Baseline::new("f").direction("thr", Direction::HigherIsBetter);
        reference.point("p", &[("thr", 100.0)]);
        let mut candidate = reference.clone();
        candidate.points[0].metrics = vec![("thr".into(), 99.0)];
        assert!(diff_baselines(&reference, &candidate, 0.05).is_clean());
    }

    #[test]
    fn diff_reports_missing_and_new_points() {
        let mut reference = Baseline::new("f");
        reference.point("old", &[("m", 1.0)]);
        let mut candidate = Baseline::new("f");
        candidate.point("new", &[("m", 1.0)]);
        let report = diff_baselines(&reference, &candidate, 0.0);
        let kinds: Vec<DiffKind> = report.entries.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![DiffKind::Missing, DiffKind::New]);
    }
}
