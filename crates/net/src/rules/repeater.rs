//! Intermediate-node (repeater) rules: Algorithms 7–9 of Appendix C.
//!
//! The repeater's job: swap pairs "as soon as pairs with labels for the
//! same VC are available on the upstream and downstream links", log swap
//! records, relay TRACK messages (rewriting their `link` correlator and
//! folding in the swap outcome), and discard pairs whose cutoff timer
//! pops — logging discard records so late TRACKs convert into EXPIREs.
//!
//! One deliberate deviation from the paper's pseudocode: Algorithm 7 says
//! "Clear **all** upstream_expire_record contents" after forwarding a
//! TRACK. Clearing all records would break chains whose discard record is
//! still waiting for its own TRACK, so we clear only the record that was
//! consumed (a strictly safer reading of the same mechanism).

use crate::events::{NetOutput, PairInfo};
use crate::ids::{Correlator, PairHandle};
use crate::messages::{Complete, Expire, Forward, Message, Track};
use crate::node::{Circuit, CircuitState, MidState, NodeStats, PendingPair, SwapRecord};
use crate::policing::link_weight;
use crate::routing_table::LinkSide;
use qn_quantum::bell::BellState;

fn mid(c: &mut Circuit) -> &mut MidState {
    match &mut c.state {
        CircuitState::Mid(m) => m,
        CircuitState::Endpoint(_) => panic!("repeater rule on endpoint"),
    }
}

/// Start a swap if both queues have a pair and no swap is running
/// (repeaters have one quantum processor).
fn try_start_swap(m: &mut MidState, out: &mut Vec<NetOutput>) {
    if m.swapping.is_some() || m.up_queue.is_empty() || m.down_queue.is_empty() {
        return;
    }
    // Oldest unexpired pairs first (paper §5 scheduling policy).
    let up = m.up_queue.pop_front().expect("checked");
    let down = m.down_queue.pop_front().expect("checked");
    out.push(NetOutput::CancelCutoff { pair: up.pair });
    out.push(NetOutput::CancelCutoff { pair: down.pair });
    out.push(NetOutput::StartSwap {
        up: up.pair,
        down: down.pair,
    });
    m.swapping = Some((up, down));
}

/// LINK rule (Algorithm 7's entry condition): queue the fresh pair, arm
/// its cutoff, and swap if a partner is available.
pub(crate) fn link_rule(c: &mut Circuit, side: LinkSide, info: PairInfo, out: &mut Vec<NetOutput>) {
    let cutoff = c.entry.cutoff;
    let m = mid(c);
    let pending = PendingPair {
        pair: info.pair,
        announced: info.announced,
    };
    if !cutoff.is_infinite() {
        out.push(NetOutput::SetCutoff {
            pair: info.pair,
            side,
            after: cutoff,
        });
    }
    match side {
        LinkSide::Upstream => m.up_queue.push_back(pending),
        LinkSide::Downstream => m.down_queue.push_back(pending),
    }
    try_start_swap(m, out);
}

/// Swap completion (Algorithm 7 body): log records or forward waiting
/// TRACKs in both directions, then look for more work.
pub(crate) fn swap_completed(
    c: &mut Circuit,
    up: Correlator,
    down: Correlator,
    outcome: BellState,
    new_handle: PairHandle,
    out: &mut Vec<NetOutput>,
) {
    let m = mid(c);
    let Some((up_pair, down_pair)) = m.swapping.take() else {
        debug_assert!(false, "swap completion without in-flight swap");
        return;
    };
    debug_assert_eq!(up_pair.pair.correlator, up);
    debug_assert_eq!(down_pair.pair.correlator, down);
    let _ = new_handle; // the joined pair's ends live at other nodes

    // Downstream-travelling TRACK waiting on the upstream pair?
    if let Some(mut track) = m.up_track.remove(&up) {
        track.link = down_pair.pair.correlator;
        track.outcome_state = track.outcome_state.combine(down_pair.announced, outcome);
        m.up_relayed.insert(up, track);
        out.push(NetOutput::SendDownstream(Message::Track(track)));
    } else {
        m.up_record.insert(
            up,
            SwapRecord {
                other: down_pair,
                outcome,
            },
        );
    }

    // Upstream-travelling TRACK waiting on the downstream pair?
    if let Some(mut track) = m.down_track.remove(&down) {
        track.link = up_pair.pair.correlator;
        track.outcome_state = track.outcome_state.combine(up_pair.announced, outcome);
        m.down_relayed.insert(down, track);
        out.push(NetOutput::SendUpstream(Message::Track(track)));
    } else {
        m.down_record.insert(
            down,
            SwapRecord {
                other: up_pair,
                outcome,
            },
        );
    }

    try_start_swap(m, out);
}

/// TRACK rule (Algorithm 8).
///
/// Duplicated TRACKs (retransmissions racing their ack, or a
/// duplication fault) find their swap record already consumed; the
/// bounded relayed-TRACK memory re-forwards the stored rewritten copy
/// so the duplicate still reaches the far end (which absorbs or
/// re-acks it). Discard records are likewise *kept* after the first
/// match so every duplicate re-bounces the EXPIRE.
pub(crate) fn track_rule(
    c: &mut Circuit,
    from_upstream: bool,
    mut track: Track,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let m = mid(c);
    if from_upstream {
        // Head-originated TRACK travelling downstream; keyed by our
        // upstream-link pair.
        if let Some(rec) = m.up_record.remove(&track.link) {
            let key = track.link;
            track.link = rec.other.pair.correlator;
            track.outcome_state = track
                .outcome_state
                .combine(rec.other.announced, rec.outcome);
            m.up_relayed.insert(key, track);
            out.push(NetOutput::SendDownstream(Message::Track(track)));
        } else if let Some(fwd) = m.up_relayed.get(&track.link) {
            stats.duplicate_tracks_relayed += 1;
            out.push(NetOutput::SendDownstream(Message::Track(*fwd)));
        } else if m.up_expired.contains(&track.link) {
            out.push(NetOutput::SendUpstream(Message::Expire(Expire {
                circuit: track.circuit,
                origin: track.origin,
            })));
        } else {
            m.up_track.insert(track.link, track);
        }
    } else {
        // Tail-originated TRACK travelling upstream; keyed by our
        // downstream-link pair.
        if let Some(rec) = m.down_record.remove(&track.link) {
            let key = track.link;
            track.link = rec.other.pair.correlator;
            track.outcome_state = track
                .outcome_state
                .combine(rec.other.announced, rec.outcome);
            m.down_relayed.insert(key, track);
            out.push(NetOutput::SendUpstream(Message::Track(track)));
        } else if let Some(fwd) = m.down_relayed.get(&track.link) {
            stats.duplicate_tracks_relayed += 1;
            out.push(NetOutput::SendUpstream(Message::Track(*fwd)));
        } else if m.down_expired.contains(&track.link) {
            out.push(NetOutput::SendDownstream(Message::Expire(Expire {
                circuit: track.circuit,
                origin: track.origin,
            })));
        } else {
            m.down_track.insert(track.link, track);
        }
    }
}

/// Cutoff expiry rule (Algorithm 9): discard the idle pair; if its TRACK
/// already arrived, bounce an EXPIRE back to the originating end-node,
/// otherwise log a discard record.
pub(crate) fn cutoff_expired(
    c: &mut Circuit,
    side: LinkSide,
    correlator: Correlator,
    out: &mut Vec<NetOutput>,
) {
    let circuit = c.entry.circuit;
    let m = mid(c);
    let queue = match side {
        LinkSide::Upstream => &mut m.up_queue,
        LinkSide::Downstream => &mut m.down_queue,
    };
    let Some(pos) = queue.iter().position(|p| p.pair.correlator == correlator) else {
        // Already consumed by a swap (timer raced the cancel) — ignore.
        return;
    };
    let pending = queue.remove(pos).expect("indexed");
    out.push(NetOutput::DiscardPair { pair: pending.pair });

    // The correlator is recorded as expired in *both* arms: a
    // retransmitted TRACK arriving after the bounce must draw a fresh
    // EXPIRE (recovering a lost one), not be held forever.
    match side {
        LinkSide::Upstream => {
            if let Some(track) = m.up_track.remove(&correlator) {
                out.push(NetOutput::SendUpstream(Message::Expire(Expire {
                    circuit,
                    origin: track.origin,
                })));
            }
            m.up_expired.insert(correlator);
        }
        LinkSide::Downstream => {
            if let Some(track) = m.down_track.remove(&correlator) {
                out.push(NetOutput::SendDownstream(Message::Expire(Expire {
                    circuit,
                    origin: track.origin,
                })));
            }
            m.down_expired.insert(correlator);
        }
    }
}

/// The runtime reclaimed a link qubit whose announcement never arrived
/// (`signalling_on_wire` + losses): the correlator is dead at this node.
/// Bounce an EXPIRE for any TRACK already held for it, and mark it
/// expired so later (retransmitted) TRACKs bounce too — otherwise the
/// chain's origin end-node sits on its qubit until its own timeout.
pub(crate) fn link_orphaned(
    c: &mut Circuit,
    side: LinkSide,
    correlator: Correlator,
    out: &mut Vec<NetOutput>,
) {
    let circuit = c.entry.circuit;
    let m = mid(c);
    match side {
        LinkSide::Upstream => {
            if let Some(track) = m.up_track.remove(&correlator) {
                out.push(NetOutput::SendUpstream(Message::Expire(Expire {
                    circuit,
                    origin: track.origin,
                })));
            }
            m.up_expired.insert(correlator);
        }
        LinkSide::Downstream => {
            if let Some(track) = m.down_track.remove(&correlator) {
                out.push(NetOutput::SendDownstream(Message::Expire(Expire {
                    circuit,
                    origin: track.origin,
                })));
            }
            m.down_expired.insert(correlator);
        }
    }
}

/// FORWARD at an intermediate node: manage the downstream link's
/// generation and relay.
///
/// Duplicated FORWARDs (a faulty plane) are relayed — downstream nodes
/// absorb their own copies — but must not be counted twice locally, or
/// `active_requests` never returns to zero and the link generates
/// forever after the circuit drains.
pub(crate) fn on_forward(
    c: &mut Circuit,
    f: Forward,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let entry = c.entry;
    let m = mid(c);
    if m.counted_requests.contains(&f.request) || m.retired_requests.contains(&f.request) {
        stats.duplicate_forwards += 1;
        out.push(NetOutput::SendDownstream(Message::Forward(f)));
        return;
    }
    m.active_requests += 1;
    m.counted_requests.insert(f.request);
    let down = entry
        .downstream
        .as_ref()
        .expect("intermediate has downstream");
    let weight = link_weight(down.max_lpr, entry.max_eer, f.rate);
    if m.link_submitted {
        out.push(NetOutput::LinkSetWeight {
            side: LinkSide::Downstream,
            label: down.label,
            weight,
        });
    } else {
        out.push(NetOutput::LinkSubmit {
            side: LinkSide::Downstream,
            label: down.label,
            min_fidelity: down.min_fidelity,
            weight,
        });
        m.link_submitted = true;
    }
    out.push(NetOutput::SendDownstream(Message::Forward(f)));
}

/// COMPLETE at an intermediate node: update or stop the downstream
/// link's generation and relay.
pub(crate) fn on_complete(
    c: &mut Circuit,
    msg: Complete,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let entry = c.entry;
    let m = mid(c);
    if !m.counted_requests.remove(&msg.request) {
        // Duplicated COMPLETE (or its FORWARD was dropped upstream):
        // nothing to retire locally, but downstream still needs it.
        stats.duplicate_completes += 1;
        out.push(NetOutput::SendDownstream(Message::Complete(msg)));
        return;
    }
    m.retired_requests.insert(msg.request);
    m.active_requests = m.active_requests.saturating_sub(1);
    let down = entry
        .downstream
        .as_ref()
        .expect("intermediate has downstream");
    if m.active_requests == 0 {
        if m.link_submitted {
            out.push(NetOutput::LinkStop {
                side: LinkSide::Downstream,
                label: down.label,
            });
            m.link_submitted = false;
        }
    } else {
        out.push(NetOutput::LinkSetWeight {
            side: LinkSide::Downstream,
            label: down.label,
            weight: link_weight(down.max_lpr, entry.max_eer, msg.rate),
        });
    }
    out.push(NetOutput::SendDownstream(Message::Complete(msg)));
}
