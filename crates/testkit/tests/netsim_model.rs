//! End-to-end model test of the netsim runtime (the ROADMAP's open
//! item): random user-request / time-advance sequences against the real
//! full-stack simulation, plus injected-**runtime**-bug meta-tests
//! proving a faulty runtime is caught with a minimal, reproducible
//! operation sequence.

use qn_testkit::models::netsim::{NetOp, NetsimFault, NetsimSpec};
use qn_testkit::{run_ops, ModelFailure, ModelSpec, ModelTest};

/// Every op-drop from a reported minimal sequence must make the model
/// and system agree again — the definition of local minimality.
fn assert_locally_minimal<S: ModelSpec>(spec: &S, failure: &ModelFailure<S::Op>) {
    assert!(
        run_ops(spec, &failure.minimal).is_err(),
        "the minimal sequence must still diverge"
    );
    for drop in 0..failure.minimal.len() {
        let mut shorter = failure.minimal.clone();
        shorter.remove(drop);
        assert!(
            run_ops(spec, &shorter).is_ok(),
            "dropping op {drop} from the minimal sequence must remove the divergence; \
             sequence: {:?}",
            failure.minimal
        );
    }
}

/// The faithful runtime satisfies the service contract on every random
/// operation sequence (submissions, cancellations, advances, settles).
#[test]
fn netsim_runtime_matches_model() {
    ModelTest::new("netsim_runtime_matches_model", NetsimSpec::new(7))
        .cases(24)
        .max_ops(10)
        .run();
}

/// The chaos leg: the same random operation sequences against a wired
/// runtime whose links churn through a seed-derived component-fault
/// schedule. Safety (at most n per end, dense sequences, exactly-once
/// completion) and zero-leak-after-settle must hold for every schedule;
/// liveness is waived while hops are dark.
#[test]
fn netsim_chaos_matches_model() {
    ModelTest::new("netsim_chaos_matches_model", NetsimSpec::chaos(17))
        .cases(16)
        .max_ops(8)
        .run();
}

/// The sharded-engine leg: the same random operation sequences against
/// the conservative-lookahead sharded engine (3 shards over the 3-node
/// chain). The engine swap is contractually bit-identical to the
/// single queue, so the full service contract — liveness included —
/// must hold unchanged; a divergence here is a sharding bug shrunk to
/// a minimal operation sequence.
#[test]
fn netsim_sharded_matches_model() {
    ModelTest::new("netsim_sharded_matches_model", NetsimSpec::sharded(7, 3))
        .cases(16)
        .max_ops(10)
        .run();
}

/// Injected runtime fault #1: a classical plane that drops every
/// message. No request can ever complete; the divergence must shrink to
/// the minimal reproduction — submit one request, settle.
#[test]
fn dead_classical_plane_shrinks_to_submit_settle() {
    let spec = NetsimSpec::with_fault(5, NetsimFault::DropAllMessages);
    let failure = ModelTest::new(
        "netsim_dead_plane",
        NetsimSpec::with_fault(5, NetsimFault::DropAllMessages),
    )
    .cases(48)
    .max_ops(8)
    .check()
    .expect_err("a dead classical plane must be caught");
    assert_eq!(
        failure.minimal.len(),
        2,
        "minimal sequence must be Submit + Settle, got: {:?}",
        failure.minimal
    );
    assert!(
        matches!(failure.minimal[0], NetOp::Submit { .. }),
        "first op must submit: {:?}",
        failure.minimal
    );
    assert!(
        matches!(failure.minimal[1], NetOp::Settle),
        "second op must settle: {:?}",
        failure.minimal
    );
    assert_locally_minimal(&spec, &failure);
    // Reproducible: running the harness again yields the same minimum.
    let again = ModelTest::new(
        "netsim_dead_plane",
        NetsimSpec::with_fault(5, NetsimFault::DropAllMessages),
    )
    .cases(48)
    .max_ops(8)
    .check()
    .expect_err("deterministic harness");
    assert_eq!(
        format!("{:?}", again.minimal),
        format!("{:?}", failure.minimal)
    );
}

/// Injected runtime fault #2: a pathological 1 µs track-timeout expires
/// every end-node pair before its confirmation can arrive — the
/// resilience mechanism itself misconfigured into a denial of service.
/// Caught, with the same minimal shape.
#[test]
fn instant_expiry_shrinks_to_submit_settle() {
    let spec = NetsimSpec::with_fault(9, NetsimFault::ExpirePairsInstantly);
    let failure = ModelTest::new(
        "netsim_instant_expiry",
        NetsimSpec::with_fault(9, NetsimFault::ExpirePairsInstantly),
    )
    .cases(48)
    .max_ops(8)
    .check()
    .expect_err("instant expiry must be caught");
    assert_eq!(
        failure.minimal.len(),
        2,
        "minimal sequence must be Submit + Settle, got: {:?}",
        failure.minimal
    );
    assert!(matches!(failure.minimal[0], NetOp::Submit { .. }));
    assert!(matches!(failure.minimal[1], NetOp::Settle));
    assert_locally_minimal(&spec, &failure);
}
