//! Property tests for the link layer protocol: invariants under random
//! operation sequences.

use proptest::prelude::*;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_link::{LinkLabel, LinkProtocol, LinkRequest, PairDemand};
use qn_quantum::bell::BellState;
use qn_sim::{NodeId, SimDuration};

#[derive(Clone, Debug)]
enum Op {
    Submit {
        label: u8,
        fidelity_pct: u8,
        count: u8,
    },
    Stop {
        label: u8,
    },
    Drive, // start + complete one generation if possible
    Abort, // start then abort
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 70u8..96, 1u8..5).prop_map(|(label, fidelity_pct, count)| Op::Submit {
            label,
            fidelity_pct,
            count
        }),
        (0u8..6).prop_map(|label| Op::Stop { label }),
        Just(Op::Drive),
        Just(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary interleavings: at most one generation in flight,
    /// next_action only points at live requests, sequence numbers are
    /// strictly increasing, and pair counts never exceed the request's
    /// demand.
    #[test]
    fn protocol_invariants_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut p = LinkProtocol::new((NodeId(0), NodeId(1)), physics);
        let mut last_seq: Option<u64> = None;
        let mut delivered: std::collections::HashMap<LinkLabel, u64> = Default::default();
        let mut demanded: std::collections::HashMap<LinkLabel, u64> = Default::default();

        for op in ops {
            match op {
                Op::Submit { label, fidelity_pct, count } => {
                    let label = LinkLabel(label as u32);
                    let req = LinkRequest {
                        label,
                        min_fidelity: fidelity_pct as f64 / 100.0,
                        demand: PairDemand::Count(count as u64),
                        weight: 1.0,
                    };
                    let had = p.has_request(label);
                    let evs = p.submit(req);
                    if !had && evs.is_empty() {
                        demanded.insert(label, count as u64);
                        delivered.insert(label, 0);
                    }
                }
                Op::Stop { label } => {
                    p.stop(LinkLabel(label as u32));
                }
                Op::Drive => {
                    if let Some(spec) = p.next_action() {
                        prop_assert!(p.has_request(spec.label), "action for dead request");
                        prop_assert!(spec.alpha > 0.0 && spec.alpha <= 0.5);
                        p.on_generation_started(spec.label);
                        prop_assert!(p.next_action().is_none(), "two concurrent generations");
                        let (pair, _evs) = p.on_generation_complete(
                            BellState::PSI_PLUS,
                            10,
                            SimDuration::from_millis(1),
                        );
                        // Sequence numbers strictly increase link-wide.
                        if let Some(prev) = last_seq {
                            prop_assert!(pair.id.seq > prev);
                        }
                        last_seq = Some(pair.id.seq);
                        let d = delivered.entry(pair.label).or_insert(0);
                        *d += 1;
                        if let Some(n) = demanded.get(&pair.label) {
                            prop_assert!(*d <= *n, "over-delivered {} of {}", d, n);
                        }
                    }
                }
                Op::Abort => {
                    if let Some(spec) = p.next_action() {
                        p.on_generation_started(spec.label);
                        p.on_generation_aborted(spec.label, SimDuration::from_micros(100));
                        prop_assert!(p.generating().is_none());
                    }
                }
            }
        }
    }

    /// Goodness (the link layer's fidelity estimate) always meets the
    /// requested minimum, for any attainable request.
    #[test]
    fn goodness_meets_requested_fidelity(fidelity in 0.7f64..0.96) {
        let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut p = LinkProtocol::new((NodeId(0), NodeId(1)), physics);
        let evs = p.submit(LinkRequest {
            label: LinkLabel(0),
            min_fidelity: fidelity,
            demand: PairDemand::Count(1),
            weight: 1.0,
        });
        prop_assume!(evs.is_empty()); // attainable
        let spec = p.next_action().unwrap();
        p.on_generation_started(spec.label);
        let (pair, _) = p.on_generation_complete(
            BellState::PSI_MINUS,
            3,
            SimDuration::from_millis(2),
        );
        prop_assert!(pair.goodness >= fidelity - 1e-9,
            "goodness {} below requested {}", pair.goodness, fidelity);
    }
}
