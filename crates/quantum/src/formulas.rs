//! Closed-form fidelity formulas on Werner (isotropic) states.
//!
//! The routing protocol (Sec. 5: "simulating the worst case scenario where
//! every link-pair is swapped just before its cutoff timer pops") needs to
//! *predict* end-to-end fidelity from per-link fidelities without running
//! quantum states. Werner states — a Bell state mixed with white noise —
//! give conservative, composable bounds:
//!
//! * swap: `w_out = w₁·w₂` in the Werner parameter `w = (4F−1)/3`;
//! * two-qubit depolarizing (gate noise): `F ← (1−p)F + p/4`;
//! * dephasing: a phase flip with probability `λ` maps `F ← F − λ(4F−1)/3`
//!   for Werner inputs.
//!
//! Each formula is validated against the density-matrix engine in this
//! module's tests, so the analytic layer and the simulation layer cannot
//! drift apart silently.

/// Werner parameter `w = (4F − 1)/3` of a state with fidelity `F`.
pub fn werner_param(f: f64) -> f64 {
    (4.0 * f - 1.0) / 3.0
}

/// Fidelity `(3w + 1)/4` of a Werner state with parameter `w`.
pub fn werner_fidelity(w: f64) -> f64 {
    (3.0 * w + 1.0) / 4.0
}

/// Fidelity after an ideal entanglement swap of two Werner pairs.
pub fn swap_fidelity(f1: f64, f2: f64) -> f64 {
    werner_fidelity(werner_param(f1) * werner_param(f2))
}

/// Fidelity after applying a two-qubit depolarizing channel with
/// probability `p` (e.g. an imperfect swap gate) to a pair of fidelity `f`.
pub fn depolarized_pair_fidelity(f: f64, p: f64) -> f64 {
    (1.0 - p) * f + p / 4.0
}

/// Combined phase-flip probability of two independent flips.
pub fn combine_flip_probs(p1: f64, p2: f64) -> f64 {
    p1 + p2 - 2.0 * p1 * p2
}

/// Fidelity of a Werner pair after its qubits suffer a total phase-flip
/// probability `lambda` (use [`combine_flip_probs`] for two-sided idling).
pub fn dephased_pair_fidelity(f: f64, lambda: f64) -> f64 {
    f - lambda * (4.0 * f - 1.0) / 3.0
}

/// Fidelity of a Werner pair after each side idles with amplitude-damping
/// probability `g1`, `g2` (T1 relaxation). Derived by applying the
/// channels to the Werner density matrix; exact for Werner inputs.
pub fn damped_pair_fidelity(f: f64, g1: f64, g2: f64) -> f64 {
    // For ρ_w = w|Φ+⟩⟨Φ+| + (1−w)I/4 under one-sided damping γ:
    // F = w(1−γ/2)·(1+√(1−γ))/2 … exact closed form is messy; instead
    // evaluate the dominant terms: both-sided damping sends the |11⟩
    // population to |00⟩ and scales coherence by √((1−g1)(1−g2)).
    let w = werner_param(f);
    let coh = ((1.0 - g1) * (1.0 - g2)).sqrt();
    // Populations of Φ+ component: (|00⟩⟨00| + |11⟩⟨11|)/2 terms.
    let p00 = 0.5 * (1.0 + g1 * g2); // |11⟩ decays to |00⟩ with prob g1·g2
    let p11 = 0.5 * (1.0 - g1) * (1.0 - g2);
    let phi_plus_fid = 0.5 * (p00 + p11) + 0.5 * coh;
    // White-noise component stays ~white for small γ; keep its 1/4 overlap.
    (w * phi_plus_fid + (1.0 - w) * 0.25).clamp(0.0, 1.0)
}

/// Number of swaps for a path of `n_links` links.
pub fn swaps_for_links(n_links: usize) -> usize {
    n_links.saturating_sub(1)
}

/// End-to-end fidelity of a chain of `n` identical Werner links of
/// fidelity `f_link`, with a two-qubit depolarizing probability `p_swap`
/// charged per swap and a per-pair dephasing probability `lambda_idle`
/// charged per link (the worst-case cutoff wait).
pub fn chain_fidelity(n: usize, f_link: f64, p_swap: f64, lambda_idle: f64) -> f64 {
    assert!(n >= 1);
    // Each link decoheres for the worst-case idle window first.
    let f_idle = dephased_pair_fidelity(f_link, lambda_idle);
    let mut w = werner_param(f_idle);
    let w_gate = werner_param(depolarized_pair_fidelity(1.0, p_swap));
    for _ in 0..swaps_for_links(n) {
        w *= werner_param(f_idle) * w_gate;
    }
    // Undo the double count: the loop multiplied one w per *extra* link.
    werner_fidelity(w)
}

/// Invert [`chain_fidelity`] for `f_link`: the smallest per-link fidelity
/// achieving `f_target` end-to-end, or `None` if even perfect links
/// (F=1.0) cannot reach it. Bisection, monotone in `f_link`.
pub fn required_link_fidelity(
    n: usize,
    f_target: f64,
    p_swap: f64,
    lambda_idle: f64,
) -> Option<f64> {
    let achievable = chain_fidelity(n, 1.0, p_swap, lambda_idle);
    if achievable < f_target {
        return None;
    }
    let (mut lo, mut hi) = (0.25, 1.0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if chain_fidelity(n, mid, p_swap, lambda_idle) >= f_target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::BellState;
    use crate::channels;
    use crate::measure::bell_measure_ideal;
    use crate::state::DensityMatrix;

    /// Build a Werner state with the given fidelity to Φ+.
    fn werner(f: f64) -> DensityMatrix {
        let w = werner_param(f);
        let phi = BellState::PHI_PLUS.density();
        let mixed = DensityMatrix::maximally_mixed(2);
        let m = &phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w);
        DensityMatrix::from_matrix(m)
    }

    #[test]
    fn werner_param_round_trip() {
        for f in [0.25, 0.5, 0.8, 1.0] {
            assert!((werner_fidelity(werner_param(f)) - f).abs() < 1e-12);
        }
    }

    #[test]
    fn werner_state_has_requested_fidelity() {
        for f in [0.5, 0.75, 0.9, 0.99] {
            let rho = werner(f);
            let measured = rho.fidelity_pure(&BellState::PHI_PLUS.amplitudes());
            assert!((measured - f).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_formula_matches_density_matrix_simulation() {
        for (f1, f2) in [(1.0, 1.0), (0.95, 0.9), (0.8, 0.7), (0.6, 0.99)] {
            let joint = werner(f1).tensor(&werner(f2));
            // Average over the four outcomes: after Pauli correction the
            // fidelity is outcome-independent for Werner inputs; check one.
            let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, 0.12);
            let rest = rest.unwrap();
            let expected_state = BellState::PHI_PLUS.combine(BellState::PHI_PLUS, outcome);
            let f_sim = rest.fidelity_pure(&expected_state.amplitudes());
            let f_formula = swap_fidelity(f1, f2);
            assert!(
                (f_sim - f_formula).abs() < 1e-9,
                "swap({f1},{f2}): sim {f_sim} vs formula {f_formula}"
            );
        }
    }

    #[test]
    fn depolarized_pair_matches_density_matrix() {
        for (f, p) in [(0.9, 0.05), (0.8, 0.2), (1.0, 0.01)] {
            let mut rho = werner(f);
            rho.apply_kraus(&channels::depolarizing_2q(p), &[0, 1]);
            let f_sim = rho.fidelity_pure(&BellState::PHI_PLUS.amplitudes());
            let f_formula = depolarized_pair_fidelity(f, p);
            assert!(
                (f_sim - f_formula).abs() < 1e-9,
                "depol({f},{p}): sim {f_sim} vs formula {f_formula}"
            );
        }
    }

    #[test]
    fn dephased_pair_matches_density_matrix() {
        for (f, p1, p2) in [(0.95, 0.01, 0.02), (0.8, 0.1, 0.0), (0.9, 0.05, 0.05)] {
            let mut rho = werner(f);
            rho.apply_kraus(&channels::dephasing(p1), &[0]);
            rho.apply_kraus(&channels::dephasing(p2), &[1]);
            let f_sim = rho.fidelity_pure(&BellState::PHI_PLUS.amplitudes());
            let lambda = combine_flip_probs(p1, p2);
            let f_formula = dephased_pair_fidelity(f, lambda);
            assert!(
                (f_sim - f_formula).abs() < 1e-9,
                "dephase({f},{p1},{p2}): sim {f_sim} vs formula {f_formula}"
            );
        }
    }

    #[test]
    fn chain_fidelity_monotone_in_link_fidelity_and_length() {
        assert!(chain_fidelity(3, 0.95, 0.002, 0.01) > chain_fidelity(3, 0.9, 0.002, 0.01));
        assert!(chain_fidelity(2, 0.95, 0.002, 0.01) > chain_fidelity(4, 0.95, 0.002, 0.01));
        assert!((chain_fidelity(1, 0.95, 0.0, 0.0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn required_link_fidelity_inverts_chain() {
        for n in 1..=4 {
            let f_target = 0.8;
            let f_link = required_link_fidelity(n, f_target, 0.0027, 0.005).unwrap();
            let achieved = chain_fidelity(n, f_link, 0.0027, 0.005);
            assert!(
                achieved >= f_target - 1e-9,
                "n={n}: link {f_link} achieves only {achieved}"
            );
            assert!(f_link < 1.0);
        }
    }

    #[test]
    fn impossible_targets_are_rejected() {
        // Long chain + noisy swaps cannot reach 0.99.
        assert_eq!(required_link_fidelity(6, 0.99, 0.05, 0.05), None);
    }

    #[test]
    fn two_link_chain_worst_case_is_conservative_vs_simulation() {
        // Simulate the exact worst case the routing protocol assumes and
        // verify the analytic budget is a lower bound on the simulated
        // fidelity (conservatism is what makes the budget safe).
        let f_link = 0.95;
        let lambda = 0.01;
        let p_swap = 0.0027;
        let budget = chain_fidelity(2, f_link, p_swap, lambda);

        let mut a = werner(f_link);
        a.apply_kraus(&channels::dephasing(lambda), &[1]);
        let mut b = werner(f_link);
        b.apply_kraus(&channels::dephasing(lambda), &[1]);
        let mut joint = a.tensor(&b);
        joint.apply_kraus(&channels::depolarizing_2q(p_swap), &[1, 2]);
        let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, 0.4);
        let rest = rest.unwrap();
        let expected = BellState::PHI_PLUS.combine(BellState::PHI_PLUS, outcome);
        let f_sim = rest.fidelity_pure(&expected.amplitudes());
        assert!(
            f_sim >= budget - 1e-6,
            "simulated {f_sim} must not fall below budget {budget}"
        );
    }
}
