//! Property tests for the event queue and engine invariants.

use proptest::prelude::*;
use qn_sim::{EventQueue, SimTime};

proptest! {
    /// Popped events are globally ordered by (time, insertion seq).
    #[test]
    fn pop_order_is_time_then_fifo(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal times");
                }
            }
            prop_assert_eq!(SimTime::from_ps(times[idx]), t);
            last = Some((t, idx));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exact_subset(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.push(SimTime::from_ps(*t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            let cancel = cancel_mask.get(*i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(*i);
            }
        }
        prop_assert_eq!(q.len(), expected.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, idx)) = q.pop() {
            popped.push(idx);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Interleaved push/pop/cancel keeps `len` consistent with reality.
    #[test]
    fn len_is_consistent_under_interleaving(ops in proptest::collection::vec(0u8..3, 1..300)) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        let mut expected_len = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    ids.push(q.push(SimTime::from_ps(i as u64 % 17), i));
                    expected_len += 1;
                }
                1 => {
                    if q.pop().is_some() {
                        expected_len -= 1;
                    }
                }
                _ => {
                    if let Some(id) = ids.pop() {
                        if q.cancel(id) {
                            expected_len -= 1;
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), expected_len);
        }
    }
}
