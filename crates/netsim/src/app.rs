//! The application harness: records everything the network delivers,
//! annotated with oracle ground truth, and derives the metrics the
//! paper's figures plot (request latency, throughput, fidelity).

use qn_net::events::{AppEvent, DeliveryKind};
use qn_net::ids::{CircuitId, RequestId};
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_sim::{NodeId, SimTime};
use std::collections::HashMap;

/// One delivery as observed by an application, annotated with the
/// simulation oracle's ground truth.
#[derive(Clone, Debug)]
pub struct DeliveryRecord {
    /// When the delivery happened.
    pub time: SimTime,
    /// Receiving node.
    pub node: NodeId,
    /// Circuit it arrived on.
    pub circuit: CircuitId,
    /// Request served.
    pub request: RequestId,
    /// Per-request delivery sequence at this end.
    pub sequence: u64,
    /// End-to-end entangled pair identifier (equal at both ends; `None`
    /// for unconfirmed EARLY deliveries).
    pub chain: Option<qn_net::events::ChainId>,
    /// What was delivered.
    pub payload: Payload,
    /// True fidelity of the pair to the protocol-claimed Bell state at
    /// delivery time (oracle; `None` for measurement deliveries and early
    /// qubit halves).
    pub oracle_fidelity: Option<f64>,
    /// Whether the protocol's tracked Bell state matched the omniscient
    /// tracker (readout errors can break this — that is physics, not a
    /// bug).
    pub state_consistent: Option<bool>,
}

/// Delivery payload, mirroring [`DeliveryKind`] without handles.
#[derive(Clone, Copy, Debug)]
pub enum Payload {
    /// A confirmed qubit (KEEP).
    Qubit {
        /// Claimed Bell state.
        state: BellState,
    },
    /// An early qubit (EARLY, unconfirmed).
    EarlyQubit {
        /// Announced (link-level) state at delivery.
        state: BellState,
    },
    /// Tracking info for an early qubit.
    EarlyTracking {
        /// Confirmed Bell state.
        state: BellState,
    },
    /// A measurement outcome (MEASURE).
    Measurement {
        /// Reported outcome bit.
        outcome: bool,
        /// Basis measured.
        basis: Pauli,
        /// Claimed Bell state.
        state: BellState,
    },
}

impl Payload {
    pub(crate) fn from_kind(kind: &DeliveryKind) -> Payload {
        match kind {
            DeliveryKind::Qubit { state, .. } => Payload::Qubit { state: *state },
            DeliveryKind::EarlyQubit { state, .. } => Payload::EarlyQubit { state: *state },
            DeliveryKind::EarlyTracking { state, .. } => Payload::EarlyTracking { state: *state },
            DeliveryKind::Measurement {
                outcome,
                basis,
                state,
            } => Payload::Measurement {
                outcome: *outcome,
                basis: *basis,
                state: *state,
            },
        }
    }
}

/// Everything applications observed during a run.
#[derive(Default)]
pub struct AppHarness {
    /// All deliveries, in time order.
    pub deliveries: Vec<DeliveryRecord>,
    /// All lifecycle notifications.
    pub events: Vec<(SimTime, NodeId, AppEvent)>,
    /// Submission times (set by the scenario driver).
    pub submitted: HashMap<(CircuitId, RequestId), SimTime>,
    /// Completion times (RequestCompleted at the head-end).
    pub completed: HashMap<(CircuitId, RequestId), SimTime>,
}

impl AppHarness {
    /// Record a lifecycle event.
    pub(crate) fn on_event(
        &mut self,
        time: SimTime,
        node: NodeId,
        circuit: CircuitId,
        ev: AppEvent,
    ) {
        if let AppEvent::RequestCompleted(id) = ev {
            self.completed.entry((circuit, id)).or_insert(time);
        }
        self.events.push((time, node, ev));
    }

    /// Latency of a request: submission to head-end completion.
    pub fn request_latency(
        &self,
        circuit: CircuitId,
        request: RequestId,
    ) -> Option<qn_sim::SimDuration> {
        let start = self.submitted.get(&(circuit, request))?;
        let end = self.completed.get(&(circuit, request))?;
        Some(end.since(*start))
    }

    /// All completed request latencies on a circuit, in request order.
    pub fn latencies(&self, circuit: CircuitId) -> Vec<(RequestId, qn_sim::SimDuration)> {
        let mut v: Vec<(RequestId, qn_sim::SimDuration)> = self
            .completed
            .keys()
            .filter(|(c, _)| *c == circuit)
            .filter_map(|(c, r)| self.request_latency(*c, *r).map(|l| (*r, l)))
            .collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }

    /// Confirmed pair deliveries on a circuit at a given node within a
    /// window (KEEP qubits and measurement outcomes count; early halves
    /// don't until confirmed).
    pub fn confirmed_deliveries(
        &self,
        circuit: CircuitId,
        node: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> usize {
        self.deliveries
            .iter()
            .filter(|d| {
                d.circuit == circuit
                    && d.node == node
                    && d.time >= from
                    && d.time <= to
                    && !matches!(d.payload, Payload::EarlyQubit { .. })
            })
            .count()
    }

    /// Deliveries whose oracle fidelity clears `threshold`.
    pub fn good_deliveries(
        &self,
        circuit: CircuitId,
        node: NodeId,
        threshold: f64,
        from: SimTime,
        to: SimTime,
    ) -> usize {
        self.deliveries
            .iter()
            .filter(|d| {
                d.circuit == circuit
                    && d.node == node
                    && d.time >= from
                    && d.time <= to
                    && d.oracle_fidelity.map(|f| f >= threshold).unwrap_or(false)
            })
            .count()
    }

    /// Mean oracle fidelity of confirmed deliveries on a circuit at a node.
    pub fn mean_fidelity(&self, circuit: CircuitId, node: NodeId) -> Option<f64> {
        let fs: Vec<f64> = self
            .deliveries
            .iter()
            .filter(|d| d.circuit == circuit && d.node == node)
            .filter_map(|d| d.oracle_fidelity)
            .collect();
        if fs.is_empty() {
            None
        } else {
            Some(fs.iter().sum::<f64>() / fs.len() as f64)
        }
    }

    /// Fraction of confirmed deliveries whose protocol-tracked state
    /// agreed with the omniscient tracker.
    pub fn state_consistency(&self) -> Option<f64> {
        let checks: Vec<bool> = self
            .deliveries
            .iter()
            .filter_map(|d| d.state_consistent)
            .collect();
        if checks.is_empty() {
            None
        } else {
            Some(checks.iter().filter(|b| **b).count() as f64 / checks.len() as f64)
        }
    }

    /// Times at which confirmed pairs were delivered at a node (Fig 11's
    /// arrival series).
    pub fn delivery_times(&self, circuit: CircuitId, node: NodeId) -> Vec<SimTime> {
        self.deliveries
            .iter()
            .filter(|d| {
                d.circuit == circuit
                    && d.node == node
                    && !matches!(d.payload, Payload::EarlyQubit { .. })
            })
            .map(|d| d.time)
            .collect()
    }

    /// Measurement outcome stream at a node, keyed by the end-to-end
    /// entangled pair identifier (for the QKD example).
    pub fn measurements(
        &self,
        circuit: CircuitId,
        node: NodeId,
    ) -> Vec<(qn_net::events::ChainId, bool, Pauli, BellState)> {
        self.deliveries
            .iter()
            .filter(|d| d.circuit == circuit && d.node == node)
            .filter_map(|d| match d.payload {
                Payload::Measurement {
                    outcome,
                    basis,
                    state,
                } => d.chain.map(|c| (c, outcome, basis, state)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::SimDuration;

    #[test]
    fn latency_accounting() {
        let mut app = AppHarness::default();
        let c = CircuitId(1);
        let r = RequestId(1);
        app.submitted.insert((c, r), SimTime::from_ps(1000));
        app.on_event(
            SimTime::from_ps(5000),
            NodeId(0),
            c,
            AppEvent::RequestCompleted(r),
        );
        assert_eq!(app.request_latency(c, r), Some(SimDuration::from_ps(4000)));
        assert_eq!(app.latencies(c).len(), 1);
    }

    #[test]
    fn delivery_filters() {
        let mut app = AppHarness::default();
        let c = CircuitId(1);
        app.deliveries.push(DeliveryRecord {
            time: SimTime::from_ps(10),
            node: NodeId(0),
            circuit: c,
            request: RequestId(1),
            sequence: 0,
            chain: None,
            payload: Payload::Qubit {
                state: BellState::PHI_PLUS,
            },
            oracle_fidelity: Some(0.93),
            state_consistent: Some(true),
        });
        app.deliveries.push(DeliveryRecord {
            time: SimTime::from_ps(20),
            node: NodeId(0),
            circuit: c,
            request: RequestId(1),
            sequence: 1,
            chain: None,
            payload: Payload::EarlyQubit {
                state: BellState::PSI_PLUS,
            },
            oracle_fidelity: None,
            state_consistent: None,
        });
        assert_eq!(
            app.confirmed_deliveries(c, NodeId(0), SimTime::ZERO, SimTime::MAX),
            1
        );
        assert_eq!(
            app.good_deliveries(c, NodeId(0), 0.9, SimTime::ZERO, SimTime::MAX),
            1
        );
        assert_eq!(
            app.good_deliveries(c, NodeId(0), 0.95, SimTime::ZERO, SimTime::MAX),
            0
        );
        assert_eq!(app.mean_fidelity(c, NodeId(0)), Some(0.93));
        assert_eq!(app.state_consistency(), Some(1.0));
    }
}
