//! **Open-world workloads** — sustained randomised traffic over chain,
//! wide-dumbbell and grid topologies: Poisson and diurnally-modulated
//! circuit arrivals, heavy-tailed circuit lifetimes and request sizes,
//! periodic whole-store decoherence checkpoints.
//!
//! Two kinds of output:
//! * **simulation-domain throughput** (`events_per_sim_sec`,
//!   `requests_per_sim_sec`, `pairs_per_sim_sec`) — bit-deterministic,
//!   diffed against `baselines/openworld.json` at `--tolerance 0` in
//!   the dm CI leg;
//! * **wall-clock throughput** (`events_per_wall_sec`, recorded per
//!   case in `meta`) — the slab/dense-table performance headline,
//!   machine-dependent and therefore never diffed.
//!
//! Run: `cargo bench --bench openworld`
//! (knobs: `QNP_RUNS` seeds per case, default 3; `QNP_ARRIVALS`
//! arrival budget per run, default 24; `QNP_THREADS` sweep workers).

use qn_bench::{
    env_u64, mean_finite, openworld_sweep, runs, seed_block, Baseline, Direction, OpenWorldConfig,
    OwArrivals, OwTopology,
};
use qn_sim::SimDuration;

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    let budget = env_u64("QNP_ARRIVALS", 24) as usize;
    let seeds = seed_block(3000, n_runs);
    println!("# Open-world workloads (runs={n_runs}, arrival budget={budget})");

    let poisson = OwArrivals::Poisson { rate_hz: 0.4 };
    let diurnal = OwArrivals::Diurnal {
        rate_hz: 0.4,
        depth: 0.8,
        period: SimDuration::from_secs(20),
    };
    let cases: Vec<(&str, OwTopology, OwArrivals)> = vec![
        ("chain4/poisson", OwTopology::Chain { n: 4 }, poisson),
        ("chain4/diurnal", OwTopology::Chain { n: 4 }, diurnal),
        (
            "dumbbell3/poisson",
            OwTopology::WideDumbbell { width: 3 },
            poisson,
        ),
        (
            "dumbbell3/diurnal",
            OwTopology::WideDumbbell { width: 3 },
            diurnal,
        ),
        ("grid3x3/poisson", OwTopology::Grid { w: 3, h: 3 }, poisson),
        ("grid3x3/diurnal", OwTopology::Grid { w: 3, h: 3 }, diurnal),
    ];

    let mut baseline = Baseline::new("openworld")
        .config_num("runs", n_runs as f64)
        .config_num("arrival_budget", budget as f64)
        .direction("requests_per_sim_sec", Direction::HigherIsBetter)
        .direction("pairs_per_sim_sec", Direction::HigherIsBetter)
        .direction("requests_completed", Direction::HigherIsBetter)
        .direction("pairs_delivered", Direction::HigherIsBetter)
        .direction("events_per_sim_sec", Direction::Informational)
        .direction("events_processed", Direction::Informational)
        .direction("circuits_admitted", Direction::Informational)
        .direction("plan_failures", Direction::Informational);

    println!(
        "# case                 circuits   req_done   pairs   events     ev/sim_s   req/sim_s   ev/wall_s"
    );
    let mut total_events = 0u64;
    for (label, topology, arrivals) in cases {
        let cfg = OpenWorldConfig::smoke(topology, arrivals, budget);
        let case_start = std::time::Instant::now();
        let points = openworld_sweep(&seeds, &cfg);
        let case_wall = case_start.elapsed().as_secs_f64();
        let events: u64 = points.iter().map(|p| p.events_processed).sum();
        total_events += events;
        let circuits: usize = points.iter().map(|p| p.circuits_admitted).sum();
        let done: usize = points.iter().map(|p| p.requests_completed).sum();
        let pairs: usize = points.iter().map(|p| p.pairs_delivered).sum();
        let failures: usize = points.iter().map(|p| p.plan_failures).sum();
        let ev_sim = mean_finite(points.iter().map(|p| p.events_per_sim_sec));
        let req_sim = mean_finite(points.iter().map(|p| p.requests_per_sim_sec));
        let pair_sim = mean_finite(points.iter().map(|p| p.pairs_per_sim_sec));
        let ev_wall = events as f64 / case_wall;
        println!(
            "# {label:20}   {circuits:8}   {done:8}   {pairs:5}   {events:8}   {ev_sim:8.1}   {req_sim:9.4}   {ev_wall:9.0}"
        );
        baseline.point(
            label,
            &[
                ("requests_per_sim_sec", req_sim),
                ("pairs_per_sim_sec", pair_sim),
                ("events_per_sim_sec", ev_sim),
                ("requests_completed", done as f64),
                ("pairs_delivered", pairs as f64),
                ("events_processed", events as f64),
                ("circuits_admitted", circuits as f64),
                ("plan_failures", failures as f64),
            ],
        );
        // Wall-clock throughput is machine-dependent: meta, never diffed.
        baseline = baseline.meta_num(&format!("events_per_wall_sec/{label}"), ev_wall);
    }

    let wall = wall_start.elapsed().as_secs_f64();
    baseline = baseline
        .meta_num("wall_clock_s", wall)
        .meta_num("events_per_wall_sec_total", total_events as f64 / wall);
    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s, {:.0} events/wall-s overall)",
        path.display(),
        qn_exec::threads(),
        wall,
        total_events as f64 / wall
    );
}
