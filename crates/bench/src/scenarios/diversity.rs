//! Scenario diversity: the widened-dumbbell workload axis.
//!
//! The paper evaluates a fixed 2×2 dumbbell; the sweep runner makes it
//! cheap to also ask how the bottleneck behaves as the number of
//! straight-across circuits contending for MA–MB grows. `width = 2`
//! with one request per circuit is the Fig 8 panel-b shape.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::CircuitId;
use qn_netsim::build::NetworkBuilder;
use qn_routing::{wide_dumbbell, CutoffPolicy};
use qn_sim::{SimDuration, SimTime};

/// Result of one widened-dumbbell configuration at one seed.
#[derive(Clone, Copy, Debug)]
pub struct WideDumbbellPoint {
    /// Straight-across circuits that completed their request.
    pub completed: usize,
    /// Circuits opened (= the width).
    pub circuits: usize,
    /// Mean request latency over completed circuits, seconds (NaN if
    /// none completed).
    pub mean_latency: f64,
    /// Aggregate delivered pairs per second across every circuit.
    pub aggregate_throughput: f64,
}

/// One run over a `width`-wide dumbbell: one `n_pairs` request per
/// straight-across circuit (Ai–Bi), all submitted at t = 0 and all
/// contending for the single MA–MB bottleneck.
pub fn wide_dumbbell_scenario(
    seed: u64,
    width: usize,
    n_pairs: u64,
    fidelity: f64,
    cutoff: CutoffPolicy,
    horizon: SimDuration,
) -> WideDumbbellPoint {
    let (topology, w) = wide_dumbbell(width, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let pairs = w.straight_pairs();
    let vcs: Vec<CircuitId> = pairs
        .iter()
        .map(|(h, t)| {
            sim.open_circuit(*h, *t, fidelity, cutoff)
                .expect("straight-across circuit plan must be feasible")
        })
        .collect();
    for (i, ((h, t), vc)) in pairs.iter().zip(&vcs).enumerate() {
        sim.submit_at(
            SimTime::ZERO,
            *vc,
            keep_request(i as u64 + 1, *h, *t, fidelity, n_pairs),
        );
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    let mut latencies = Vec::new();
    let mut delivered = 0usize;
    for (i, ((h, _), vc)) in pairs.iter().zip(&vcs).enumerate() {
        if let Some(l) = app.request_latency(*vc, qn_net::RequestId(i as u64 + 1)) {
            latencies.push(l.as_secs_f64());
        }
        delivered += app.confirmed_deliveries(*vc, *h, SimTime::ZERO, SimTime::MAX);
    }
    WideDumbbellPoint {
        completed: latencies.len(),
        circuits: vcs.len(),
        mean_latency: if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        aggregate_throughput: delivered as f64 / horizon.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_one_completes_its_request() {
        let p = wide_dumbbell_scenario(
            1,
            1,
            3,
            0.8,
            CutoffPolicy::short(),
            SimDuration::from_secs(60),
        );
        assert_eq!(p.circuits, 1);
        assert_eq!(p.completed, 1);
        assert!(p.aggregate_throughput > 0.0);
    }
}
