//! Integration tests of the full simulation stack: routing + signalling
//! + QNP + link layer + hardware + events, on the paper's topologies.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, CircuitId, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_netsim::Payload;
use qn_quantum::gates::Pauli;
use qn_routing::{chain, dumbbell, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

fn keep(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

fn lab_dumbbell(seed: u64) -> (NetSim, qn_routing::Dumbbell) {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    (NetworkBuilder::new(topology).seed(seed).build(), d)
}

#[test]
fn delivers_pairs_above_fidelity_threshold() {
    let (mut sim, d) = lab_dumbbell(11);
    let f = 0.85;
    let vc = sim
        .open_circuit(d.a0, d.b0, f, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, f, 5));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));

    let app = sim.app();
    assert!(
        app.completed.contains_key(&(vc, RequestId(1))),
        "request must complete"
    );
    // Both ends deliver all five pairs.
    assert_eq!(
        app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX),
        5
    );
    assert_eq!(
        app.confirmed_deliveries(vc, d.b0, SimTime::ZERO, SimTime::MAX),
        5
    );
    // Oracle fidelities clear the threshold on average (individual pairs
    // fluctuate with the sampled noise).
    let mean = app.mean_fidelity(vc, d.a0).unwrap();
    assert!(
        mean >= f - 0.05,
        "mean delivered fidelity {mean} too far below target {f}"
    );
    // The protocol's Bell-state claims agree with the omniscient tracker
    // (readout fidelity 0.998 ⇒ rare mismatches only).
    assert!(app.state_consistency().unwrap() > 0.9);
}

#[test]
fn same_seed_reproduces_identical_runs() {
    let run = |seed| {
        let (mut sim, d) = lab_dumbbell(seed);
        let vc = sim
            .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 4));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let times: Vec<u64> = sim
            .app()
            .deliveries
            .iter()
            .map(|r| r.time.as_ps())
            .collect();
        (times, sim.events_processed())
    };
    let (t1, e1) = run(42);
    let (t2, e2) = run(42);
    let (t3, _) = run(43);
    assert_eq!(t1, t2, "same seed must reproduce byte-identical timing");
    assert_eq!(e1, e2);
    assert_ne!(t1, t3, "different seeds must diverge");
}

#[test]
fn two_circuits_share_the_bottleneck() {
    let (mut sim, d) = lab_dumbbell(7);
    let v1 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let v2 = sim
        .open_circuit(d.a1, d.b1, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, v1, keep(1, d.a0, d.b0, 0.85, 6));
    sim.submit_at(SimTime::ZERO, v2, keep(1, d.a1, d.b1, 0.85, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    assert!(app.completed.contains_key(&(v1, RequestId(1))));
    assert!(app.completed.contains_key(&(v2, RequestId(1))));
    // Fair sharing: latencies within a factor ~3 of each other.
    let l1 = app.request_latency(v1, RequestId(1)).unwrap().as_secs_f64();
    let l2 = app.request_latency(v2, RequestId(1)).unwrap().as_secs_f64();
    let ratio = (l1 / l2).max(l2 / l1);
    assert!(ratio < 3.0, "latencies {l1:.2}s vs {l2:.2}s too unequal");
}

#[test]
fn short_memory_lifetimes_cause_discards_but_protocol_still_delivers() {
    // T2 = 0.5 s: pairs decohere fast; the cutoff discards many but the
    // protocol keeps functioning (the Fig 10 property).
    let params = HardwareParams::simulation().with_electron_t2(0.5);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(3).build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.8, CutoffPolicy::long())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.8, 3));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    assert!(
        app.completed.contains_key(&(vc, RequestId(1))),
        "protocol must still deliver with short memories"
    );
    let mean = app.mean_fidelity(vc, d.a0).unwrap();
    assert!(mean > 0.7, "delivered fidelity {mean} collapsed");
}

#[test]
fn oracle_baseline_runs_without_cutoffs() {
    let params = HardwareParams::simulation().with_electron_t2(1.0);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(5)
        .disable_cutoff()
        .build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.8, CutoffPolicy::long())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.8, 10));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
    let app = sim.app();
    let total = app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX);
    let good = app.good_deliveries(vc, d.a0, 0.8, SimTime::ZERO, SimTime::MAX);
    assert!(total > 0, "baseline must deliver pairs");
    // Without cutoffs some delivered pairs fall below threshold — the
    // oracle filters them (that is the baseline's defining behaviour).
    assert!(good <= total);
}

#[test]
fn excessive_message_delay_destroys_fidelity_not_liveness() {
    // Fig 10c: delays beyond the cutoff leave the quantum plane running
    // (swaps don't block on messages) but delivered pairs are stale.
    let params = HardwareParams::simulation().with_electron_t2(1.6);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut fast = NetworkBuilder::new(topology.clone()).seed(9).build();
    let mut slow = NetworkBuilder::new(topology)
        .seed(9)
        .extra_message_delay(SimDuration::from_millis(60))
        .build();
    for sim in [&mut fast, &mut slow] {
        let vc = sim
            .open_circuit(d.a0, d.b0, 0.8, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.8, 5));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    }
    let vc = CircuitId(1);
    let f_fast = fast.app().mean_fidelity(vc, d.a0).unwrap();
    assert!(
        f_fast > 0.75,
        "fast control plane should deliver good pairs, got {f_fast}"
    );
    // The slow control plane must still *deliver* (liveness) …
    let slow_count = slow
        .app()
        .confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX);
    assert!(slow_count > 0, "deliveries must not stall on slow messages");
    // … but with clearly degraded fidelity.
    let f_slow = slow.app().mean_fidelity(vc, d.a0).unwrap();
    assert!(
        f_slow < f_fast,
        "60 ms extra delay should hurt fidelity: {f_slow} vs {f_fast}"
    );
}

#[test]
fn measure_requests_produce_correlated_outcomes() {
    let (mut sim, d) = lab_dumbbell(21);
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let req = UserRequest {
        request_type: RequestType::Measure(Pauli::Z),
        // Measure in a fixed Bell frame so outcomes correlate simply.
        final_state: Some(qn_quantum::BellState::PHI_PLUS),
        ..keep(1, d.a0, d.b0, 0.85, 20)
    };
    sim.submit_at(SimTime::ZERO, vc, req);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));
    let app = sim.app();
    let head = app.measurements(vc, d.a0);
    let tail = app.measurements(vc, d.b0);
    assert_eq!(head.len(), 20, "head outcomes");
    assert_eq!(tail.len(), 20, "tail outcomes");
    // Match by sequence; Φ+ measured in Z⊗Z correlates. With ~0.87 state
    // fidelity + readout noise expect ≥70 % agreement, ≫50 % random.
    let mut agree = 0;
    for (chain, o, _, _) in &head {
        if let Some((_, o2, _, _)) = tail.iter().find(|(c, _, _, _)| c == chain) {
            if o == o2 {
                agree += 1;
            }
        }
    }
    assert!(
        agree >= 14,
        "Z-outcomes should correlate strongly: {agree}/20"
    );
}

#[test]
fn early_requests_deliver_then_confirm() {
    let (mut sim, d) = lab_dumbbell(31);
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let req = UserRequest {
        request_type: RequestType::Early,
        ..keep(1, d.a0, d.b0, 0.85, 3)
    };
    sim.submit_at(SimTime::ZERO, vc, req);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    let app = sim.app();
    let early: usize = app
        .deliveries
        .iter()
        .filter(|r| matches!(r.payload, Payload::EarlyQubit { .. }))
        .count();
    let tracking: usize = app
        .deliveries
        .iter()
        .filter(|r| matches!(r.payload, Payload::EarlyTracking { .. }))
        .count();
    assert!(early >= 6, "both ends deliver early qubits: {early}");
    assert!(tracking >= 6, "tracking info follows: {tracking}");
    assert!(app.completed.contains_key(&(vc, RequestId(1))));
}

#[test]
fn final_state_requests_deliver_requested_bell_state() {
    let (mut sim, d) = lab_dumbbell(41);
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let req = UserRequest {
        final_state: Some(qn_quantum::BellState::PHI_PLUS),
        ..keep(1, d.a0, d.b0, 0.85, 4)
    };
    sim.submit_at(SimTime::ZERO, vc, req);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    let app = sim.app();
    let mut head_deliveries = 0;
    for rec in app.deliveries.iter().filter(|r| r.circuit == vc) {
        match rec.payload {
            Payload::Qubit { state } => {
                assert_eq!(state, qn_quantum::BellState::PHI_PLUS);
            }
            _ => panic!("KEEP request delivers qubits"),
        }
        if let Some(f) = rec.oracle_fidelity {
            assert!(f > 0.7, "pair fidelity {f}");
        }
        // The head corrects before delivering, so its claims must match
        // the omniscient frame (the tail may deliver pre-correction).
        if rec.node == d.a0 {
            head_deliveries += 1;
            assert_eq!(rec.state_consistent, Some(true));
        }
    }
    assert_eq!(head_deliveries, 4);
}

#[test]
fn near_term_chain_delivers_f05_pairs() {
    // Fig 11 smoke test: 3 nodes, 2 × 25 km, near-term hardware, one
    // communication qubit per node, carbon storage, F = 0.5.
    let topology = chain(
        3,
        HardwareParams::near_term(),
        FibreParams::telecom(25_000.0),
    );
    let mut sim = NetworkBuilder::new(topology).seed(13).near_term(2).build();
    // Hand-tuned plan, as the paper does ("As our routing protocol does
    // not work well in this environment we manually populate the routing
    // tables").
    let plan = qn_routing::CircuitPlan {
        path: vec![NodeId(0), NodeId(1), NodeId(2)],
        e2e_fidelity: 0.5,
        link_fidelity: 0.82,
        alpha: 0.1,
        cutoff: SimDuration::from_millis(1500),
        max_lpr: 5.0,
        max_eer: 1.0,
    };
    let vc = sim.install_plan(plan);
    sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(2), 0.5, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(1800));
    let app = sim.app();
    let delivered = app.confirmed_deliveries(vc, NodeId(0), SimTime::ZERO, SimTime::MAX);
    assert!(
        delivered >= 6,
        "near-term hardware must still deliver (got {delivered})"
    );
    // The hand-tuned plan targets F = 0.5 exactly, so individual deliveries
    // straddle the bound and the sample mean lands on either side of it
    // (the paper reports "average fidelity ≈ 0.5"; across seeds this
    // scenario's six-pair mean spans roughly 0.45-0.52). The band rejects
    // systematic degradation while tolerating that sampling noise.
    let mean = app.mean_fidelity(vc, NodeId(0)).unwrap();
    assert!(
        (0.48..0.60).contains(&mean),
        "delivered fidelity {mean} too far from the F = 0.5 target"
    );
}

#[test]
fn no_leaked_pairs_after_completion() {
    let (mut sim, d) = lab_dumbbell(51);
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 3));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    assert!(sim.app().completed.contains_key(&(vc, RequestId(1))));
    // After completion + drain, no pairs should linger (links stopped,
    // queues drained by cutoffs).
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    assert_eq!(sim.live_pairs(), 0, "pairs leaked after completion");
}

#[test]
fn sequential_requests_on_one_circuit() {
    let (mut sim, d) = lab_dumbbell(61);
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    for i in 0..3 {
        sim.submit_at(
            SimTime::ZERO + SimDuration::from_secs(i * 5),
            vc,
            keep(i + 1, d.a0, d.b0, 0.85, 2),
        );
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    for i in 1..=3 {
        assert!(
            app.completed.contains_key(&(vc, RequestId(i))),
            "request {i} incomplete"
        );
    }
    assert_eq!(
        app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX),
        6
    );
}

#[test]
fn ring_topology_circuit_works_end_to_end() {
    // A 6-node ring: the controller must pick one direction around the
    // ring and the circuit must function like any chain.
    let topology = qn_routing::ring(6, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(91).build();
    let vc = sim
        .open_circuit(NodeId(0), NodeId(2), 0.85, CutoffPolicy::short())
        .unwrap();
    let path = sim.installed(vc).unwrap().path.clone();
    assert_eq!(path.len(), 3, "two hops around the ring: {path:?}");
    sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(2), 0.85, 3));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    assert!(sim.app().completed.contains_key(&(vc, RequestId(1))));
    assert_eq!(
        sim.app()
            .confirmed_deliveries(vc, NodeId(0), SimTime::ZERO, SimTime::MAX),
        3
    );
}

#[test]
fn near_term_runs_are_deterministic_too() {
    let fingerprint = |seed: u64| -> Vec<u64> {
        let topology = chain(
            3,
            HardwareParams::near_term(),
            FibreParams::telecom(25_000.0),
        );
        let mut sim = NetworkBuilder::new(topology)
            .seed(seed)
            .near_term(2)
            .build();
        let plan = qn_routing::CircuitPlan {
            path: vec![NodeId(0), NodeId(1), NodeId(2)],
            e2e_fidelity: 0.5,
            link_fidelity: 0.82,
            alpha: 0.1,
            cutoff: SimDuration::from_millis(1500),
            max_lpr: 5.0,
            max_eer: 1.0,
        };
        let vc = sim.install_plan(plan);
        sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(2), 0.5, 2));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));
        sim.app()
            .deliveries
            .iter()
            .map(|r| r.time.as_ps())
            .collect()
    };
    assert_eq!(fingerprint(13), fingerprint(13));
}

#[test]
fn tracking_is_exact_with_perfect_readout() {
    // With perfect readout the announced swap outcomes are always true,
    // so the QNP's lazy XOR tracking must agree with the omniscient
    // tracker on every single delivery.
    let mut params = HardwareParams::simulation();
    params.gates.readout.fidelity0 = 1.0;
    params.gates.readout.fidelity1 = 1.0;
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(101).build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 12));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    assert_eq!(
        sim.app().state_consistency(),
        Some(1.0),
        "perfect readout must give exact tracking"
    );
    assert_eq!(sim.state_mismatches(), 0);
}
