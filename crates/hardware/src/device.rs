//! Quantum device memory management.
//!
//! The paper's Fig 4 shows a *quantum memory management unit* arbitrating
//! qubit slots. [`QDevice`] is that component: it owns the slot inventory
//! of one node and hands out / reclaims qubits. Slot scarcity is a real
//! protocol force — the two-communication-qubits-per-link limit is what
//! produces the Fig 8c "quantum congestion collapse".
//!
//! Two inventory shapes cover the paper's evaluations:
//!
//! * [`QDevice::per_link`] — the main-simulation simplification
//!   (Appendix B): every qubit behaves as a communication qubit, two are
//!   dedicated to each attached link and not shared between links.
//! * [`QDevice::near_term`] — Fig 11 hardware: a single electron
//!   (communication) qubit shared by all links plus a few carbon storage
//!   qubits.

use crate::params::HardwareParams;
use qn_sim::{LinkId, NodeId};
use std::fmt;

/// A memory slot on a device.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QubitId(pub u32);

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The species of a memory slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QubitKind {
    /// Electron spin: can participate in entanglement generation.
    Electron,
    /// Carbon nuclear spin: storage only.
    Carbon,
}

#[derive(Clone, Debug)]
struct Slot {
    kind: QubitKind,
    /// For per-link inventories: the link this slot is dedicated to.
    link: Option<LinkId>,
    free: bool,
}

/// The qubit inventory of one node.
#[derive(Clone, Debug)]
pub struct QDevice {
    node: NodeId,
    slots: Vec<Slot>,
    params: HardwareParams,
}

impl QDevice {
    /// Main-simulation inventory: `per_link` communication qubits dedicated
    /// to each attached link (the paper uses two).
    pub fn per_link(
        node: NodeId,
        links: &[LinkId],
        per_link: usize,
        params: HardwareParams,
    ) -> Self {
        let mut slots = Vec::new();
        for link in links {
            for _ in 0..per_link {
                slots.push(Slot {
                    kind: QubitKind::Electron,
                    link: Some(*link),
                    free: true,
                });
            }
        }
        QDevice {
            node,
            slots,
            params,
        }
    }

    /// Near-term inventory: one shared electron plus `carbons` storage
    /// qubits.
    pub fn near_term(node: NodeId, carbons: usize, params: HardwareParams) -> Self {
        let mut slots = vec![Slot {
            kind: QubitKind::Electron,
            link: None,
            free: true,
        }];
        for _ in 0..carbons {
            slots.push(Slot {
                kind: QubitKind::Carbon,
                link: None,
                free: true,
            });
        }
        QDevice {
            node,
            slots,
            params,
        }
    }

    /// The node this device belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The hardware parameter set of this device.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// T1/T2 of a slot, in seconds.
    pub fn coherence_times(&self, qubit: QubitId) -> (f64, f64) {
        match self.slots[qubit.0 as usize].kind {
            QubitKind::Electron => (self.params.electron_t1, self.params.electron_t2),
            QubitKind::Carbon => (
                self.params.carbon_t1.unwrap_or(self.params.electron_t1),
                self.params.carbon_t2.unwrap_or(self.params.electron_t2),
            ),
        }
    }

    /// Species of a slot.
    pub fn kind(&self, qubit: QubitId) -> QubitKind {
        self.slots[qubit.0 as usize].kind
    }

    /// Allocate a communication qubit usable on `link`: a slot dedicated
    /// to that link (per-link inventory) or the shared electron (near-term
    /// inventory).
    pub fn alloc_comm(&mut self, link: LinkId) -> Option<QubitId> {
        let idx = self.slots.iter().position(|s| {
            s.free && s.kind == QubitKind::Electron && (s.link.is_none() || s.link == Some(link))
        })?;
        self.slots[idx].free = false;
        Some(QubitId(idx as u32))
    }

    /// Allocate a storage (carbon) qubit.
    pub fn alloc_storage(&mut self) -> Option<QubitId> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.free && s.kind == QubitKind::Carbon)?;
        self.slots[idx].free = false;
        Some(QubitId(idx as u32))
    }

    /// Return a qubit to the free pool.
    pub fn free(&mut self, qubit: QubitId) {
        let slot = &mut self.slots[qubit.0 as usize];
        debug_assert!(!slot.free, "double free of {qubit}");
        slot.free = true;
    }

    /// Number of free communication qubits usable on `link`.
    pub fn free_comm(&self, link: LinkId) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.free
                    && s.kind == QubitKind::Electron
                    && (s.link.is_none() || s.link == Some(link))
            })
            .count()
    }

    /// Number of free storage qubits.
    pub fn free_storage(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.free && s.kind == QubitKind::Carbon)
            .count()
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_link_slots_are_dedicated() {
        let links = [LinkId(0), LinkId(1)];
        let mut dev = QDevice::per_link(NodeId(0), &links, 2, HardwareParams::simulation());
        assert_eq!(dev.capacity(), 4);
        assert_eq!(dev.free_comm(LinkId(0)), 2);
        let q0 = dev.alloc_comm(LinkId(0)).unwrap();
        let q1 = dev.alloc_comm(LinkId(0)).unwrap();
        assert_ne!(q0, q1);
        // Link 0 pool exhausted; link 1 unaffected.
        assert!(dev.alloc_comm(LinkId(0)).is_none());
        assert_eq!(dev.free_comm(LinkId(1)), 2);
        dev.free(q0);
        assert_eq!(dev.free_comm(LinkId(0)), 1);
        assert!(dev.alloc_comm(LinkId(0)).is_some());
    }

    #[test]
    fn near_term_shares_one_electron() {
        let mut dev = QDevice::near_term(NodeId(1), 2, HardwareParams::near_term());
        assert_eq!(dev.capacity(), 3);
        let e = dev.alloc_comm(LinkId(0)).unwrap();
        assert_eq!(dev.kind(e), QubitKind::Electron);
        // The single electron serves all links — none left for link 1.
        assert!(dev.alloc_comm(LinkId(1)).is_none());
        let c = dev.alloc_storage().unwrap();
        assert_eq!(dev.kind(c), QubitKind::Carbon);
        assert_eq!(dev.free_storage(), 1);
        dev.free(e);
        assert!(dev.alloc_comm(LinkId(1)).is_some());
    }

    #[test]
    fn coherence_times_differ_by_kind() {
        let dev = QDevice::near_term(NodeId(0), 1, HardwareParams::near_term());
        let (t1_e, t2_e) = dev.coherence_times(QubitId(0));
        let (t1_c, t2_c) = dev.coherence_times(QubitId(1));
        assert_eq!(t2_e, 1.46);
        assert_eq!(t2_c, 60.0);
        assert!(t1_e > 0.0 && t1_c > 0.0);
    }

    #[test]
    fn storage_alloc_fails_without_carbons() {
        let mut dev = QDevice::per_link(NodeId(0), &[LinkId(0)], 2, HardwareParams::simulation());
        assert!(dev.alloc_storage().is_none());
        assert_eq!(dev.free_storage(), 0);
    }
}
