//! Compare two benchmark baseline directories and flag regressions.
//!
//! ```sh
//! cargo run --release --example bench_diff                  # baselines/ vs target/qnp-bench
//! cargo run --release --example bench_diff -- ref_dir cand_dir
//! cargo run --release --example bench_diff -- --tolerance 0.25 --report-only baselines target/qnp-bench
//! ```
//!
//! For every `<figure>.json` in the reference directory, the candidate's
//! file of the same name is diffed metric by metric; movements beyond
//! the tolerance are classified by each metric's declared direction
//! (throughput down / latency up ⇒ regression). Exits non-zero when a
//! regression — or a reference metric/point missing from the candidate
//! — is found, unless `--report-only` is given (the CI smoke job's
//! non-blocking mode).
//!
//! Simulation statistics with few seeds are noisy, so the default
//! tolerance is deliberately wide (25 %); the `QNP_RUNS=2` reference
//! under `baselines/` is a smoke reference, not a precision one.

use qn_bench::report::{diff_baselines, Baseline, DiffKind};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    reference: PathBuf,
    candidate: PathBuf,
    tolerance: f64,
    report_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reference: PathBuf::from("baselines"),
        candidate: qn_bench::baseline_dir(),
        tolerance: 0.25,
        report_only: false,
    };
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a value");
                args.tolerance = v.parse().expect("--tolerance must be a number");
            }
            "--report-only" => args.report_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_diff [--tolerance REL] [--report-only] [REFERENCE_DIR [CANDIDATE_DIR]]"
                );
                std::process::exit(0);
            }
            other => positional.push(PathBuf::from(other)),
        }
    }
    if let Some(p) = positional.first() {
        args.reference = p.clone();
    }
    if let Some(p) = positional.get(1) {
        args.candidate = p.clone();
    }
    args
}

fn load(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = parse_args();
    println!(
        "# bench_diff — reference {} vs candidate {} (tolerance {:.0}%)",
        args.reference.display(),
        args.candidate.display(),
        args.tolerance * 100.0
    );

    let mut figures: Vec<PathBuf> = match std::fs::read_dir(&args.reference) {
        Ok(dir) => dir
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!(
                "cannot read reference dir {}: {e}",
                args.reference.display()
            );
            return ExitCode::from(2);
        }
    };
    figures.sort();
    if figures.is_empty() {
        eprintln!("no *.json baselines under {}", args.reference.display());
        return ExitCode::from(2);
    }

    let mut total_regressions = 0usize;
    let mut total_flagged = 0usize;
    let mut total_missing = 0usize;
    for ref_path in figures {
        let name = ref_path.file_name().unwrap().to_string_lossy().to_string();
        let reference = match load(&ref_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        let cand_path = args.candidate.join(&name);
        if !cand_path.exists() {
            println!("## {name}: candidate missing (bench not run) — skipped");
            continue;
        }
        let candidate = match load(&cand_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        let report = diff_baselines(&reference, &candidate, args.tolerance);
        if report.is_clean() {
            println!("## {name}: clean ({} points)", reference.points.len());
            continue;
        }
        println!(
            "## {name}: {} flagged, {} regressions, {} missing",
            report.entries.len(),
            report.regressions(),
            report.missing()
        );
        for e in &report.entries {
            let tag = match e.kind {
                DiffKind::Regression => "REGRESSION",
                DiffKind::Improvement => "improvement",
                DiffKind::Change => "change",
                DiffKind::Missing => "MISSING",
                DiffKind::New => "new",
            };
            println!(
                "  {tag:<11} {}/{}: {} -> {} ({:+.1}%)",
                e.point,
                e.metric,
                e.reference,
                e.candidate,
                e.rel_change * 100.0
            );
        }
        total_regressions += report.regressions();
        // A reference metric/point absent from the candidate is lost
        // gate coverage — block on it like a regression, otherwise a
        // renamed metric silently stops being guarded.
        total_missing += report.missing();
        total_flagged += report.entries.len();
    }

    println!(
        "#\n# total: {total_flagged} flagged, {total_regressions} regressions, {total_missing} missing"
    );
    if (total_regressions > 0 || total_missing > 0) && !args.report_only {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
