//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), range/tuple/`Just`
//! strategies, `prop_map`, `prop_filter`, `prop_oneof!`, `collection::vec`,
//! `any::<T>()`, and the `prop_assert*!`/`prop_assume!` macros — **with
//! shrinking**: every strategy samples a [`tree::ShrinkTree`], and a
//! failing case is greedily minimised to a locally-minimal counterexample
//! before being reported (alongside the original).
//!
//! Differences from real proptest, by design:
//!
//! * cases are sampled from a **deterministic** per-test RNG (seeded from
//!   the test name), so CI failures reproduce locally without a seed file —
//!   and because shrinking consults no RNG, the *minimised* counterexample
//!   is identical run to run;
//! * shrinking is a greedy first-failing-child descent over Hedgehog-style
//!   rose trees (no `simplify`/`complicate` cursor, no fork persistence);
//! * strategy values must be `Clone + Debug + 'static` (real proptest only
//!   needs `Debug`), which every type in this workspace satisfies;
//! * macro arguments are plain identifiers (`x in 0..10`), not arbitrary
//!   patterns.
//!
//! Environment knobs (see EXPERIMENTS.md "Property suites"):
//! `PROPTEST_CASES` overrides the default case count (explicit
//! `with_cases` wins), `PROPTEST_CASES_MULTIPLIER` scales *every* test's
//! case count (the CI nightly-style job sets 4), and
//! `PROPTEST_MAX_SHRINK_ITERS` caps shrink-time property executions.

pub mod test_runner;
pub mod tree;

pub mod strategy {
    use crate::test_runner::TestRng;
    use crate::tree::{float_tree, int_tree, join2, ShrinkTree};
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of shrinkable values of type `Self::Value`.
    ///
    /// A strategy samples a whole [`ShrinkTree`] — the generated value
    /// plus the lattice of simpler candidates the runner walks when the
    /// property fails.
    pub trait Strategy {
        type Value: Clone + fmt::Debug + 'static;

        /// Sample a value together with its shrink tree.
        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value>;

        /// Sample just the value (no shrinking context).
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.tree(rng).into_value()
        }

        fn prop_map<O, F>(self, f: F) -> Map<Self, O>
        where
            Self: Sized,
            O: Clone + fmt::Debug + 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map {
                source: self,
                f: Rc::new(f),
            }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            Filter {
                source: self,
                whence,
                f: Rc::new(f),
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sampler: Rc::new(move |rng: &mut TestRng| self.tree(rng)),
            }
        }
    }

    /// Type-erased strategy, the element type of `prop_oneof!` unions.
    pub struct BoxedStrategy<V> {
        #[allow(clippy::type_complexity)]
        sampler: Rc<dyn Fn(&mut TestRng) -> ShrinkTree<V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Rc::clone(&self.sampler),
            }
        }
    }

    impl<V: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<V> {
            (self.sampler)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`]. The *source* tree shrinks and
    /// every candidate is pushed through the mapping function.
    pub struct Map<S: Strategy, O> {
        source: S,
        f: Rc<dyn Fn(S::Value) -> O>,
    }

    impl<S: Strategy, O: Clone + fmt::Debug + 'static> Strategy for Map<S, O> {
        type Value = O;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<O> {
            self.source.tree(rng).map(Rc::clone(&self.f))
        }
    }

    /// Result of [`Strategy::prop_filter`]; resamples until accepted,
    /// and prunes shrink candidates the predicate rejects.
    pub struct Filter<S: Strategy> {
        source: S,
        whence: &'static str,
        #[allow(clippy::type_complexity)]
        f: Rc<dyn Fn(&S::Value) -> bool>,
    }

    impl<S: Strategy> Strategy for Filter<S> {
        type Value = S::Value;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<S::Value> {
            for _ in 0..10_000 {
                let tree = self.source.tree(rng);
                if (self.f)(tree.value()) {
                    return tree.prune(Rc::clone(&self.f));
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive samples: {}",
                self.whence
            );
        }
    }

    /// Strategy yielding one fixed value (requires `Clone`); minimal by
    /// definition, so it never shrinks.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
        type Value = T;

        fn tree(&self, _rng: &mut TestRng) -> ShrinkTree<T> {
            ShrinkTree::leaf(self.0.clone())
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    /// Shrinking stays within the sampled alternative.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V: Clone + fmt::Debug + 'static> Strategy for Union<V> {
        type Value = V;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<V> {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].tree(rng)
        }
    }

    /// Scalars samplable from half-open and inclusive ranges, shrinking
    /// toward the range's lower bound.
    pub trait SampleScalar: Copy + fmt::Debug + 'static {
        fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
        /// A shrink tree for `value`, descending toward `origin`.
        fn shrink_from(origin: Self, value: Self) -> ShrinkTree<Self>;
    }

    macro_rules! impl_sample_scalar_int {
        ($($t:ty),*) => {$(
            impl SampleScalar for $t {
                fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                    assert!(span > 0, "cannot sample from an empty range");
                    if span > u64::MAX as i128 {
                        // Full-width inclusive range: every word is a sample.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }

                fn shrink_from(origin: Self, value: Self) -> ShrinkTree<Self> {
                    int_tree(origin as i128, value as i128).map(Rc::new(|v: i128| v as $t))
                }
            }
        )*};
    }
    impl_sample_scalar_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleScalar for f64 {
        fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
            assert!(lo < hi, "cannot sample from an empty range");
            let v = lo + (hi - lo) * rng.unit_f64();
            if v >= hi {
                lo
            } else {
                v
            }
        }

        fn shrink_from(origin: Self, value: Self) -> ShrinkTree<Self> {
            float_tree(origin, value, 24)
        }
    }

    impl SampleScalar for f32 {
        fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
            assert!(lo < hi, "cannot sample from an empty range");
            let v = lo + (hi - lo) * rng.unit_f64() as f32;
            if v >= hi {
                lo
            } else {
                v
            }
        }

        fn shrink_from(origin: Self, value: Self) -> ShrinkTree<Self> {
            float_tree(origin as f64, value as f64, 24).map(Rc::new(|v: f64| v as f32))
        }
    }

    impl<T: SampleScalar> Strategy for Range<T> {
        type Value = T;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<T> {
            let v = T::sample_scalar(rng, self.start, self.end, false);
            T::shrink_from(self.start, v)
        }
    }

    impl<T: SampleScalar> Strategy for RangeInclusive<T> {
        type Value = T;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<T> {
            let v = T::sample_scalar(rng, *self.start(), *self.end(), true);
            T::shrink_from(*self.start(), v)
        }
    }

    // Tuple strategies: components shrink independently (one at a time),
    // built from nested pair joins.

    impl<A: Strategy> Strategy for (A,) {
        type Value = (A::Value,);

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            self.0.tree(rng).map(Rc::new(|a| (a,)))
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            join2(self.0.tree(rng), self.1.tree(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            join2(join2(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng))
                .map(Rc::new(|((a, b), c)| (a, b, c)))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            join2(
                join2(join2(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                self.3.tree(rng),
            )
            .map(Rc::new(|(((a, b), c), d)| (a, b, c, d)))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            join2(
                join2(
                    join2(join2(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                    self.3.tree(rng),
                ),
                self.4.tree(rng),
            )
            .map(Rc::new(|((((a, b), c), d), e)| (a, b, c, d, e)))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
        for (A, B, C, D, E, F)
    {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            join2(
                join2(
                    join2(
                        join2(join2(self.0.tree(rng), self.1.tree(rng)), self.2.tree(rng)),
                        self.3.tree(rng),
                    ),
                    self.4.tree(rng),
                ),
                self.5.tree(rng),
            )
            .map(Rc::new(|(((((a, b), c), d), e), f)| (a, b, c, d, e, f)))
        }
    }

    /// Full-range strategy backing `any::<T>()`; integers shrink toward
    /// zero, `true` shrinks to `false`.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<bool> {
            if rng.next_u64() & 1 == 1 {
                ShrinkTree::with_children(true, || vec![ShrinkTree::leaf(false)])
            } else {
                ShrinkTree::leaf(false)
            }
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<f64> {
            float_tree(0.0, rng.unit_f64(), 24)
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn tree(&self, rng: &mut TestRng) -> ShrinkTree<$t> {
                    let v = rng.next_u64() as $t;
                    int_tree(0, v as i128).map(Rc::new(|v: i128| v as $t))
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized
    where
        Any<Self>: crate::strategy::Strategy<Value = Self>,
    {
    }

    impl Arbitrary for bool {}
    impl Arbitrary for u8 {}
    impl Arbitrary for u16 {}
    impl Arbitrary for u32 {}
    impl Arbitrary for u64 {}
    impl Arbitrary for usize {}
    impl Arbitrary for i8 {}
    impl Arbitrary for i16 {}
    impl Arbitrary for i32 {}
    impl Arbitrary for i64 {}
    impl Arbitrary for isize {}
    impl Arbitrary for f64 {}

    pub fn any<T: Arbitrary>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::tree::{vec_tree, ShrinkTree};
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments of [`vec`]: `n`, `lo..hi`, `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length. Shrinks the
    /// length toward the size range's minimum (chunked element removal)
    /// and individual elements via their own trees.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn tree(&self, rng: &mut TestRng) -> ShrinkTree<Self::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            let elems = (0..n).map(|_| self.element.tree(rng)).collect();
            vec_tree(elems, self.size.lo)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `if !cond { fail the current case }`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    left
                );
            }
        }
    };
}

/// Discard the current case (does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test entry point. Each contained function runs
/// `config.cases` sampled cases (default 256); a failing case is
/// shrunk to a locally-minimal counterexample and both the minimal and
/// the original inputs are reported in the panic message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __qnp_config: $crate::test_runner::Config = $config;
                let __qnp_strategy = ($($strategy,)+);
                let __qnp_result = $crate::test_runner::run_property(
                    stringify!($name),
                    &__qnp_config,
                    &__qnp_strategy,
                    |__qnp_vals| {
                        let ($($arg,)+) = __qnp_vals;
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
                if let ::core::result::Result::Err(__qnp_failure) = __qnp_result {
                    let __qnp_render = |__qnp_vals: &_| {
                        let ($(ref $arg,)+) = *__qnp_vals;
                        let __qnp_parts: ::std::vec::Vec<::std::string::String> = vec![
                            $(::std::format!("{} = {:?}", stringify!($arg), $arg)),+
                        ];
                        __qnp_parts.join("\n  ")
                    };
                    ::std::panic!(
                        "{}",
                        __qnp_failure.render(stringify!($name), &__qnp_render)
                    );
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0.0f64..1.0, n in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u64..100, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|e| *e < 100));
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            Just(99u32),
        ]) {
            prop_assert!(op < 4 || op == 99);
        }

        #[test]
        fn assume_filters(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn filter_values_satisfy_predicate(
            x in (0u32..100).prop_filter("odd only", |v| v % 2 == 1),
        ) {
            prop_assert!(x % 2 == 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>()) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(dead_code)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    /// The failure message must carry both the minimal and the original
    /// counterexample, each rendered with its binding name.
    #[test]
    fn failure_message_reports_both_counterexamples() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn inner(xs in crate::collection::vec(7u64..8, 2), flag in Just(true)) {
                prop_assert!(!flag, "flag was set");
            }
        }
        let payload = std::panic::catch_unwind(inner).expect_err("inner must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("minimal failing input"), "message: {msg}");
        assert!(msg.contains("original failing input"), "message: {msg}");
        assert!(msg.contains("xs = [7, 7]"), "message: {msg}");
        assert!(msg.contains("flag = true"), "message: {msg}");
    }

    /// Body panics (not just `prop_assert!` failures) are caught and
    /// shrunk like ordinary failures.
    #[test]
    fn panicking_bodies_shrink_too() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[allow(dead_code)]
            fn inner(x in 0u32..1000) {
                assert!(x < 10, "hard panic at {x}");
                prop_assert!(true);
            }
        }
        let payload = std::panic::catch_unwind(inner).expect_err("inner must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("panic: hard panic at"), "message: {msg}");
        assert!(
            msg.contains("x = 10"),
            "x must shrink to the boundary 10; message: {msg}"
        );
    }
}
