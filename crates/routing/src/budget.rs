//! Fidelity budgeting and cutoff computation — the paper's "rudimentary
//! algorithm" (§5): *"It calculates a network path together with link
//! fidelities as a function of end-to-end requirements by simulating the
//! worst case scenario where every link-pair is swapped just before its
//! cutoff timer pops."*
//!
//! The worst-case chain model (on Werner states, conservative):
//!
//! * every link-pair idles for the full cutoff window before its swap
//!   (two-sided T2 dephasing, T1 damping negligible at these scales);
//! * every swap charges the two-qubit gate depolarizing noise and the
//!   readout-error-induced mistracking penalty.
//!
//! Inverting the model gives the per-link fidelity for a requested
//! end-to-end fidelity. The formulas come from `qn-quantum::formulas`
//! where each is validated against the density-matrix engine.

use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::HardwareParams;
use qn_quantum::channels;
use qn_quantum::formulas;
use qn_sim::SimDuration;

/// How the cutoff timeout is chosen (§5 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CutoffPolicy {
    /// The time for a fresh link-pair to lose ≈1.5 % of its initial
    /// fidelity ("Normally we set the cutoff time to a value determined
    /// by the memory lifetime").
    FidelityLoss {
        /// Fraction of initial fidelity allowed to decay (0.015 in the
        /// paper).
        fraction: f64,
    },
    /// The time at which a link has the given probability of having
    /// generated a pair (the "shorter cutoff … 0.85 probability").
    GenerationQuantile {
        /// Target generation probability (0.85 in the paper).
        probability: f64,
    },
    /// A hand-picked value (the paper's Fig 11 tunes this manually).
    Manual(SimDuration),
}

impl CutoffPolicy {
    /// The paper's default ("long") cutoff.
    pub fn long() -> Self {
        CutoffPolicy::FidelityLoss { fraction: 0.015 }
    }

    /// The paper's "shorter cutoff".
    pub fn short() -> Self {
        CutoffPolicy::GenerationQuantile { probability: 0.85 }
    }

    /// Evaluate the policy for a link producing pairs of fidelity
    /// `f_link` at bright-state parameter `alpha`.
    pub fn evaluate(&self, physics: &LinkPhysics, f_link: f64, alpha: f64) -> SimDuration {
        match *self {
            CutoffPolicy::Manual(d) => d,
            CutoffPolicy::FidelityLoss { fraction } => {
                cutoff_for_fidelity_loss(physics.params(), f_link, fraction)
            }
            CutoffPolicy::GenerationQuantile { probability } => {
                cutoff_for_generation_quantile(physics, alpha, probability)
            }
        }
    }
}

/// Time for a pair of fidelity `f0` to decay to `f0·(1−fraction)` under
/// two-sided T2 dephasing.
pub fn cutoff_for_fidelity_loss(params: &HardwareParams, f0: f64, fraction: f64) -> SimDuration {
    let t2 = params.electron_t2;
    let delta_f = fraction * f0;
    // λ needed: ΔF = λ·(4F−1)/3.
    let lambda = (3.0 * delta_f / (4.0 * f0 - 1.0)).clamp(0.0, 0.5);
    // Two-sided dephasing: λ = 2p − 2p² ⇒ p = (1 − √(1−2λ))/2.
    let p = 0.5 * (1.0 - (1.0 - 2.0 * lambda).max(0.0).sqrt());
    // p = (1 − e^{−t/T2})/2 ⇒ t = −T2·ln(1 − 2p).
    let t = -t2 * (1.0 - 2.0 * p).max(1e-12).ln();
    SimDuration::from_secs_f64(t)
}

/// Time at which the link has `probability` chance of having produced at
/// least one pair (geometric quantile over attempt cycles).
pub fn cutoff_for_generation_quantile(
    physics: &LinkPhysics,
    alpha: f64,
    probability: f64,
) -> SimDuration {
    let p = physics.success_prob(alpha).clamp(1e-12, 1.0 - 1e-12);
    let cycles = ((1.0 - probability).ln() / (1.0 - p).ln()).ceil().max(1.0);
    physics.cycle_time().mul_f64(cycles)
}

/// Per-swap Werner-parameter penalty from the hardware: two-qubit gate
/// depolarizing plus readout mistracking (two measurements per swap, a
/// flipped announced bit relabels the pair to an orthogonal Bell state).
pub fn swap_noise_params(params: &HardwareParams) -> (f64, f64) {
    let p_gate = channels::depolarizing_param_for_fidelity(params.gates.two_qubit.fidelity, 4);
    let q = 1.0 - 0.5 * (params.gates.readout.fidelity0 + params.gates.readout.fidelity1);
    (p_gate, q)
}

/// Worst-case end-to-end fidelity of `n_links` identical links of
/// fidelity `f_link` when every pair idles a full `cutoff` before its
/// swap.
pub fn worst_case_chain_fidelity(
    params: &HardwareParams,
    n_links: usize,
    f_link: f64,
    cutoff: SimDuration,
) -> f64 {
    let t2 = params.electron_t2;
    let p_idle = channels::dephasing_prob(cutoff.as_secs_f64(), t2);
    let lambda = formulas::combine_flip_probs(p_idle, p_idle);
    let (p_gate, q) = swap_noise_params(params);
    let f = formulas::chain_fidelity(n_links, f_link, p_gate, lambda);
    // Mistracking: each swap announces 2 bits; each bit flips w.p. q.
    // A flip moves the pair to an orthogonal Bell state (fidelity ≈
    // (1−F)/3 ≈ 0): charge the full fidelity mass of the flip branches.
    let n_swaps = n_links.saturating_sub(1) as f64;
    let p_good_bits = ((1.0 - q) * (1.0 - q)).powf(n_swaps);
    let w = formulas::werner_param(f) * p_good_bits;
    formulas::werner_fidelity(w)
}

/// Invert [`worst_case_chain_fidelity`] for the per-link fidelity needed
/// to hit `f_target` end-to-end; `None` if unattainable even with
/// perfect links.
pub fn required_link_fidelity(
    params: &HardwareParams,
    n_links: usize,
    f_target: f64,
    cutoff: SimDuration,
) -> Option<f64> {
    if worst_case_chain_fidelity(params, n_links, 1.0, cutoff) < f_target {
        return None;
    }
    let (mut lo, mut hi) = (0.25f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if worst_case_chain_fidelity(params, n_links, mid, cutoff) >= f_target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_hardware::params::FibreParams;

    fn lab_physics() -> LinkPhysics {
        LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m())
    }

    #[test]
    fn long_cutoff_scales_with_t2() {
        let p60 = HardwareParams::simulation();
        let p16 = HardwareParams::simulation().with_electron_t2(1.6);
        let c60 = cutoff_for_fidelity_loss(&p60, 0.95, 0.015);
        let c16 = cutoff_for_fidelity_loss(&p16, 0.95, 0.015);
        assert!(c60 > c16);
        let ratio = c60.as_secs_f64() / c16.as_secs_f64();
        assert!(
            (ratio - 60.0 / 1.6).abs() < 0.5,
            "cutoff ∝ T2: ratio {ratio}"
        );
        // For T2 = 60 s the cutoff is of order a second.
        assert!(c60.as_secs_f64() > 0.3 && c60.as_secs_f64() < 3.0);
    }

    #[test]
    fn cutoff_produces_the_requested_loss() {
        let params = HardwareParams::simulation().with_electron_t2(2.0);
        let f0 = 0.95;
        let cutoff = cutoff_for_fidelity_loss(&params, f0, 0.015);
        let p = channels::dephasing_prob(cutoff.as_secs_f64(), 2.0);
        let lambda = formulas::combine_flip_probs(p, p);
        let f_after = formulas::dephased_pair_fidelity(f0, lambda);
        let loss = (f0 - f_after) / f0;
        assert!((loss - 0.015).abs() < 1e-3, "loss {loss}");
    }

    #[test]
    fn short_cutoff_matches_geometric_quantile() {
        let physics = lab_physics();
        let alpha = physics.alpha_for_fidelity(0.95).unwrap();
        let cutoff = cutoff_for_generation_quantile(&physics, alpha, 0.85);
        // P(at least one success within cutoff) ≈ 0.85.
        let p = physics.success_prob(alpha);
        let cycles = cutoff.as_secs_f64() / physics.cycle_time().as_secs_f64();
        let prob = 1.0 - (1.0 - p).powf(cycles);
        assert!((prob - 0.85).abs() < 0.02, "generation prob {prob}");
    }

    #[test]
    fn short_cutoff_is_shorter_than_long_for_long_memories() {
        // With T2 = 60 s (Fig 8's "long-lived memory") the 1.5 % rule gives
        // ~1 s while the 0.85 quantile is tens of ms.
        let physics = lab_physics();
        let alpha = physics.alpha_for_fidelity(0.95).unwrap();
        let long = CutoffPolicy::long().evaluate(&physics, 0.95, alpha);
        let short = CutoffPolicy::short().evaluate(&physics, 0.95, alpha);
        assert!(
            short < long,
            "short cutoff {short} must undercut long {long}"
        );
    }

    #[test]
    fn required_link_fidelity_is_conservative() {
        // The simulated worst case chain must meet the target when links
        // are exactly at the budgeted fidelity.
        let params = HardwareParams::simulation();
        let cutoff = SimDuration::from_millis(50);
        for (n, target) in [(2, 0.9), (3, 0.85), (4, 0.8)] {
            let f_link = required_link_fidelity(&params, n, target, cutoff).unwrap();
            let achieved = worst_case_chain_fidelity(&params, n, f_link, cutoff);
            assert!(
                achieved >= target - 1e-9,
                "n={n}: {f_link} gives {achieved} < {target}"
            );
            assert!(f_link > target, "link fidelity must exceed e2e target");
        }
    }

    #[test]
    fn longer_chains_need_better_links() {
        let params = HardwareParams::simulation();
        let cutoff = SimDuration::from_millis(50);
        let f2 = required_link_fidelity(&params, 2, 0.85, cutoff).unwrap();
        let f4 = required_link_fidelity(&params, 4, 0.85, cutoff).unwrap();
        assert!(f4 > f2);
    }

    #[test]
    fn shorter_cutoff_relaxes_link_requirements() {
        // Paper Fig 8 caption: "A shorter cutoff allows the routing
        // algorithm to use a tighter bound on the decoherence and thus to
        // relax the fidelity requirements on each link improving their
        // rates."
        let params = HardwareParams::simulation().with_electron_t2(1.6);
        let f_tight = required_link_fidelity(&params, 3, 0.85, SimDuration::from_millis(5));
        let f_loose = required_link_fidelity(&params, 3, 0.85, SimDuration::from_millis(50));
        assert!(f_tight.unwrap() < f_loose.unwrap());
        // An even looser bound can make the target unattainable outright.
        assert_eq!(
            required_link_fidelity(&params, 3, 0.85, SimDuration::from_millis(100)),
            None
        );
    }

    #[test]
    fn unattainable_budget_rejected() {
        let params = HardwareParams::simulation().with_electron_t2(0.01);
        assert_eq!(
            required_link_fidelity(&params, 5, 0.95, SimDuration::from_secs(1)),
            None
        );
    }

    #[test]
    fn worst_case_validated_against_density_matrix() {
        // Build the exact worst case in the quantum engine: two links at
        // the budget fidelity, idle for the full cutoff, noisy swap.
        use qn_hardware::device::QubitId;
        use qn_hardware::pairs::{PairStore, SwapNoise};
        use qn_quantum::bell::BellState;
        use qn_sim::{NodeId, SimRng, SimTime};

        let params = HardwareParams::simulation().with_electron_t2(1.6);
        let cutoff = SimDuration::from_millis(20);
        let target = 0.85;
        let f_link = required_link_fidelity(&params, 2, target, cutoff).unwrap();

        // Average the simulated outcome over several RNG draws.
        let mut total = 0.0;
        let n_runs = 30;
        for seed in 0..n_runs {
            let mut store = PairStore::new();
            let mut rng = SimRng::from_seed(seed);
            let t2 = params.electron_t2;
            let w = formulas::werner_param(f_link);
            let phi = BellState::PHI_PLUS.density();
            let mixed = qn_quantum::DensityMatrix::maximally_mixed(2);
            let state = qn_quantum::DensityMatrix::from_matrix(
                &phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w),
            );
            let a = store.create(
                SimTime::ZERO,
                state.clone(),
                BellState::PHI_PLUS,
                [
                    (NodeId(0), QubitId(0), 3600.0, t2),
                    (NodeId(1), QubitId(0), 3600.0, t2),
                ],
            );
            let b = store.create(
                SimTime::ZERO,
                state,
                BellState::PHI_PLUS,
                [
                    (NodeId(1), QubitId(1), 3600.0, t2),
                    (NodeId(2), QubitId(0), 3600.0, t2),
                ],
            );
            // Both pairs idle the full cutoff; swap right at the deadline.
            let swap_at = SimTime::ZERO + cutoff;
            let noise = SwapNoise::from_params(&params);
            let res = store.swap(a, b, NodeId(1), swap_at, &noise, &mut rng);
            let announced = store.get(res.new_pair).unwrap().announced;
            total += store.fidelity_to(res.new_pair, announced, swap_at);
        }
        let mean = total / n_runs as f64;
        assert!(
            mean >= target - 0.02,
            "worst-case simulation {mean} fell below budget target {target}"
        );
    }
}
