//! Reference model of the generational pair slab.
//!
//! `qn_hardware::PairStore` keeps pairs in a dense slab: handles pack
//! `(slot index, generation)`, vacated slots are reused LIFO with a
//! bumped generation, and the decoherence sweep streams the slots in
//! order. The protocols rely on three behavioural guarantees — a
//! handle is never re-issued (stale handles resolve to `None`, not to
//! the slot's new occupant), live handles always resolve to their own
//! pair, and churn never corrupts the live count. The model below is
//! the obviously-correct version: a plain map from handle bits to pair
//! facts, plus the set of every handle ever issued.

use crate::ModelSpec;
use proptest::prelude::*;
use qn_hardware::device::QubitId;
use qn_hardware::pairs::{PairId, PairStore};
use qn_quantum::bell::BellState;
use qn_quantum::pairstate::{BellDiagonal, PairState, StateRep};
use qn_sim::{NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// One operation of the slab interface. Slot arguments index into the
/// model's issued-handle list (modulo its length), so shrunk
/// counterexamples stay valid as earlier operations disappear.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlabOp {
    /// Create a pair between `node % 4` and `(node % 4) + 1` announced
    /// in the `announced % 4`-th Bell state.
    Create {
        /// Selects the node pair.
        node: u32,
        /// Selects the announced Bell state.
        announced: usize,
    },
    /// Discard the `slot % issued`-th handle ever issued (live or
    /// stale — stale discards must be `None` no-ops).
    Discard {
        /// Selects the handle.
        slot: usize,
    },
    /// Resolve the `slot % issued`-th handle and compare every
    /// observable fact (liveness, announced state, creation time, end
    /// nodes).
    Get {
        /// Selects the handle.
        slot: usize,
    },
    /// Advance the whole store by `dt_ms` and compare the live count
    /// (the sweep must touch noise clocks, never liveness).
    AdvanceAll {
        /// Sweep step in milliseconds.
        dt_ms: u64,
    },
}

/// What the model remembers about one issued handle.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelPair {
    /// Announced Bell state.
    pub announced: BellState,
    /// Creation time.
    pub created: SimTime,
    /// End nodes, in order.
    pub nodes: [NodeId; 2],
}

/// The reference: handle bits → pair facts for live pairs, plus every
/// handle ever issued (for stale-handle probes).
#[derive(Default)]
pub struct SlabModel {
    /// Live pairs by handle bits.
    pub live: HashMap<u64, ModelPair>,
    /// Every handle ever issued, in issue order.
    pub issued: Vec<u64>,
    /// The model clock (monotone; `AdvanceAll` moves it).
    pub now_ps: u64,
}

/// [`ModelSpec`] for the generational slab behind [`PairStore`].
pub struct SlabSpec;

impl ModelSpec for SlabSpec {
    type Op = SlabOp;
    type Model = SlabModel;
    type System = PairStore;

    fn new_model(&self) -> SlabModel {
        SlabModel::default()
    }

    fn new_system(&self) -> PairStore {
        PairStore::with_rep(StateRep::Bell)
    }

    fn op_strategy(&self) -> BoxedStrategy<SlabOp> {
        prop_oneof![
            (0u32..4, 0usize..4).prop_map(|(node, announced)| SlabOp::Create { node, announced }),
            (0usize..64).prop_map(|slot| SlabOp::Discard { slot }),
            (0usize..64).prop_map(|slot| SlabOp::Get { slot }),
            (1u64..50).prop_map(|dt_ms| SlabOp::AdvanceAll { dt_ms }),
        ]
        .boxed()
    }

    fn precondition(&self, model: &SlabModel, op: &SlabOp) -> bool {
        match op {
            SlabOp::Discard { .. } | SlabOp::Get { .. } => !model.issued.is_empty(),
            _ => true,
        }
    }

    fn apply(
        &self,
        model: &mut SlabModel,
        system: &mut PairStore,
        op: &SlabOp,
    ) -> Result<(), String> {
        let now = SimTime::from_ps(model.now_ps);
        match *op {
            SlabOp::Create { node, announced } => {
                let announced = BellState::from_index(announced % 4);
                let nodes = [NodeId(node % 4), NodeId(node % 4 + 1)];
                let id = system.create_pair(
                    now,
                    PairState::Bell(BellDiagonal::from_bell_state(announced)),
                    announced,
                    [
                        (nodes[0], QubitId(0), 3600.0, 60.0),
                        (nodes[1], QubitId(0), 3600.0, 60.0),
                    ],
                );
                if model.issued.contains(&id.0) {
                    return Err(format!(
                        "handle {:#x} re-issued (slot {} generation {}) — stale \
                         handles would alias the new occupant",
                        id.0,
                        id.index(),
                        id.generation()
                    ));
                }
                model.issued.push(id.0);
                model.live.insert(
                    id.0,
                    ModelPair {
                        announced,
                        created: now,
                        nodes,
                    },
                );
                Ok(())
            }
            SlabOp::Discard { slot } => {
                let bits = model.issued[slot % model.issued.len()];
                let expected = model.live.remove(&bits);
                let got = system.discard(PairId(bits));
                match (&expected, &got) {
                    (Some(m), Some(ends)) => {
                        let got_nodes = [ends[0].0, ends[1].0];
                        if got_nodes != m.nodes {
                            return Err(format!(
                                "discard of {bits:#x}: freed ends {got_nodes:?}, model \
                                 expected {:?}",
                                m.nodes
                            ));
                        }
                        Ok(())
                    }
                    (None, None) => Ok(()),
                    _ => Err(format!(
                        "discard of {bits:#x}: system {}, model {}",
                        if got.is_some() {
                            "freed a pair"
                        } else {
                            "no-op"
                        },
                        if expected.is_some() {
                            "expected a live pair"
                        } else {
                            "expected a stale no-op"
                        }
                    )),
                }
            }
            SlabOp::Get { slot } => {
                let bits = model.issued[slot % model.issued.len()];
                let expected = model.live.get(&bits);
                let got = system.get(PairId(bits));
                match (expected, got) {
                    (Some(m), Some(view)) => {
                        if view.announced != m.announced
                            || view.created != m.created
                            || [view.ends()[0].node, view.ends()[1].node] != m.nodes
                        {
                            return Err(format!(
                                "get of {bits:#x}: view ({:?}, {:?}) vs model {m:?}",
                                view.announced, view.created
                            ));
                        }
                        Ok(())
                    }
                    (None, None) => Ok(()),
                    (e, g) => Err(format!(
                        "get of {bits:#x}: system live={}, model live={}",
                        g.is_some(),
                        e.is_some()
                    )),
                }
            }
            SlabOp::AdvanceAll { dt_ms } => {
                model.now_ps += SimDuration::from_millis(dt_ms).as_ps();
                system.advance_all(SimTime::from_ps(model.now_ps));
                Ok(())
            }
        }
    }

    fn invariants(&self, model: &SlabModel, system: &PairStore) -> Result<(), String> {
        if system.len() != model.live.len() {
            return Err(format!(
                "live count: system {} vs model {}",
                system.len(),
                model.live.len()
            ));
        }
        if system.is_empty() != model.live.is_empty() {
            return Err("is_empty disagrees with len".to_string());
        }
        if system.slot_count() > model.issued.len() {
            return Err(format!(
                "slot count {} exceeds handles ever issued {} — slots must only \
                 come from creates",
                system.slot_count(),
                model.issued.len()
            ));
        }
        // Every live handle the model knows must come back from the
        // store's slot-ordered iteration, exactly once.
        let mut seen = 0usize;
        for view in system.iter() {
            let m = model
                .live
                .get(&view.id.0)
                .ok_or_else(|| format!("iter yielded unknown handle {:#x}", view.id.0))?;
            if view.announced != m.announced {
                return Err(format!("iter handle {:#x} announced mismatch", view.id.0));
            }
            seen += 1;
        }
        if seen != model.live.len() {
            return Err(format!(
                "iter yielded {seen} pairs, model has {}",
                model.live.len()
            ));
        }
        Ok(())
    }
}
