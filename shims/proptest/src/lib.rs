//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), range/tuple/`Just`
//! strategies, `prop_map`, `prop_oneof!`, `collection::vec`, `any::<T>()`,
//! and the `prop_assert*!`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are sampled from a **deterministic** per-test RNG (seeded from
//!   the test name), so CI failures reproduce locally without a seed file;
//! * there is **no shrinking** — a failing case reports the assertion
//!   message, the case number and the `Debug` rendering of every
//!   generated input (strategy values must therefore be `Debug`), not a
//!   minimised input.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Deterministic RNG driving all strategy sampling. Like real
    /// proptest, it is backed by the `rand` crate (here: the in-tree
    /// shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen()
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            self.inner.gen_range(0..n)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; the case is not counted.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a samplable distribution.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sampler: std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)),
            }
        }
    }

    /// Type-erased strategy, the element type of `prop_oneof!` unions.
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        #[allow(clippy::type_complexity)]
        sampler: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sampler)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`]; resamples until accepted.
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive samples: {}",
                self.whence
            );
        }
    }

    /// Strategy yielding one fixed value (requires `Clone`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Scalars samplable from half-open and inclusive ranges.
    pub trait SampleScalar: Copy {
        fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
    }

    macro_rules! impl_sample_scalar_int {
        ($($t:ty),*) => {$(
            impl SampleScalar for $t {
                fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                    assert!(span > 0, "cannot sample from an empty range");
                    if span > u64::MAX as i128 {
                        // Full-width inclusive range: every word is a sample.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_sample_scalar_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleScalar for f64 {
        fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
            assert!(lo < hi, "cannot sample from an empty range");
            let v = lo + (hi - lo) * rng.unit_f64();
            if v >= hi {
                lo
            } else {
                v
            }
        }
    }

    impl SampleScalar for f32 {
        fn sample_scalar(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
            assert!(lo < hi, "cannot sample from an empty range");
            let v = lo + (hi - lo) * rng.unit_f64() as f32;
            if v >= hi {
                lo
            } else {
                v
            }
        }
    }

    impl<T: SampleScalar> Strategy for Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_scalar(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleScalar> Strategy for RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_scalar(rng, *self.start(), *self.end(), true)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Full-range strategy backing `any::<T>()`.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    macro_rules! impl_any {
        ($($t:ty => |$rng:ident| $e:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, $rng: &mut TestRng) -> $t {
                    $e
                }
            }
        )*};
    }
    impl_any! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8 => |rng| rng.next_u64() as i8;
        i16 => |rng| rng.next_u64() as i16;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        isize => |rng| rng.next_u64() as isize;
        f64 => |rng| rng.unit_f64();
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized
    where
        Any<Self>: crate::strategy::Strategy<Value = Self>,
    {
    }

    impl Arbitrary for bool {}
    impl Arbitrary for u8 {}
    impl Arbitrary for u16 {}
    impl Arbitrary for u32 {}
    impl Arbitrary for u64 {}
    impl Arbitrary for usize {}
    impl Arbitrary for i8 {}
    impl Arbitrary for i16 {}
    impl Arbitrary for i32 {}
    impl Arbitrary for i64 {}
    impl Arbitrary for isize {}
    impl Arbitrary for f64 {}

    pub fn any<T: Arbitrary>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments of [`vec`]: `n`, `lo..hi`, `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `if !cond { fail the current case }`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    left
                );
            }
        }
    };
}

/// Discard the current case (does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test entry point. Each contained function runs
/// `config.cases` sampled cases (default 256).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    // Sample into a temporary first and render it with
                    // `Debug` before the pattern binding can move it, so
                    // a failing case can report the exact generated
                    // inputs (no shrinking, but full visibility).
                    let mut __qnp_inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let __qnp_value =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                        __qnp_inputs.push(::std::format!(
                            "{} = {:?}",
                            stringify!($arg),
                            &__qnp_value
                        ));
                        let $arg = __qnp_value;
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "{}: too many prop_assume! rejections ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "{} failed at case {}:\n{}\nfailing inputs:\n  {}",
                                stringify!($name),
                                case,
                                msg,
                                __qnp_inputs.join("\n  ")
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0.0f64..1.0, n in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u64..100, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|e| *e < 100));
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            Just(99u32),
        ]) {
            prop_assert!(op < 4 || op == 99);
        }

        #[test]
        fn assume_filters(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>()) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(dead_code)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    /// The failure message must carry the `Debug` rendering of every
    /// generated input, named after its binding pattern.
    #[test]
    fn failure_message_reports_generated_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn inner(xs in crate::collection::vec(7u64..8, 2), flag in Just(true)) {
                prop_assert!(!flag, "flag was set");
            }
        }
        let payload = std::panic::catch_unwind(inner).expect_err("inner must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("failing inputs:"), "message: {msg}");
        assert!(msg.contains("xs = [7, 7]"), "message: {msg}");
        assert!(msg.contains("flag = true"), "message: {msg}");
    }
}
