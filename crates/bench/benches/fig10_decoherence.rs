//! **Figure 10** — robustness against decoherence.
//!
//! * (a,b): throughput of two competing circuits (A0-B0 at F=0.9, A1-B1
//!   at F=0.8) as the memory lifetime T2* shrinks, for the QNP's cutoff
//!   mechanism vs the oracle baseline ("simpler protocol" that discards
//!   end-to-end pairs below fidelity using the simulation's backdoor).
//! * (c): throughput vs injected classical message delay at T2* ≈ 1.6 s;
//!   the dashed vertical line in the paper is the cutoff value.
//!
//! Paper shapes to reproduce: throughput falls with T2*; the F=0.9
//! circuit is hit harder ("low, but not zero"); the cutoff beats the
//! oracle; delay has no effect until it approaches the cutoff.
//!
//! Run: `cargo bench --bench fig10_decoherence` (knob: `QNP_RUNS`,
//! default 3).

use qn_bench::{fig10ab_scenario, fig10c_scenario, runs, Fig10Variant};
use qn_sim::SimDuration;

fn main() {
    let n_runs = runs(3);
    println!("# Figure 10 — decoherence robustness (runs={n_runs})");

    // ---- panels (a, b): throughput vs memory lifetime ------------------
    let t2_values = [0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 60.0];
    let mut cutoff_thr_at_min = [0.0f64; 2];
    let mut oracle_thr_at_min = [0.0f64; 2];
    for variant in [Fig10Variant::Cutoff, Fig10Variant::OracleBaseline] {
        println!(
            "#\n# panel a/b — variant: {}",
            match variant {
                Fig10Variant::Cutoff => "QNP cutoff",
                Fig10Variant::OracleBaseline => "oracle baseline (no cutoff, oracle filter)",
            }
        );
        println!("# T2_s   thr_F0.9_pairs_per_s   thr_F0.8_pairs_per_s");
        for (i, t2) in t2_values.iter().enumerate() {
            let mut a = 0.0;
            let mut b = 0.0;
            for seed in 0..n_runs {
                let p = fig10ab_scenario(3000 + seed, *t2, variant);
                a += p.thr_f09;
                b += p.thr_f08;
            }
            a /= n_runs as f64;
            b /= n_runs as f64;
            println!("{t2:6.2}   {a:20.2}   {b:20.2}");
            if i == 0 {
                match variant {
                    Fig10Variant::Cutoff => cutoff_thr_at_min = [a, b],
                    Fig10Variant::OracleBaseline => oracle_thr_at_min = [a, b],
                }
            }
        }
    }

    // ---- panel (c): throughput vs message delay ------------------------
    println!("#\n# panel c — throughput vs extra per-hop message delay (T2*=1.6 s)");
    println!("# delay_ms   good_F0.9   good_F0.8   raw_F0.9   raw_F0.8");
    let delays_ms = [0u64, 1, 2, 5, 10, 15, 20, 30, 50, 100];
    let mut series_good = Vec::new();
    let mut cutoff_line = f64::NAN;
    for delay in delays_ms {
        let mut good = [0.0f64; 2];
        let mut raw = [0.0f64; 2];
        for seed in 0..n_runs {
            let p = fig10c_scenario(4000 + seed, SimDuration::from_millis(delay));
            good[0] += p.good[0];
            good[1] += p.good[1];
            raw[0] += p.raw[0];
            raw[1] += p.raw[1];
            cutoff_line = p.cutoff_s;
        }
        for v in good.iter_mut().chain(raw.iter_mut()) {
            *v /= n_runs as f64;
        }
        println!(
            "{delay:8}   {:9.2}   {:9.2}   {:8.2}   {:8.2}",
            good[0], good[1], raw[0], raw[1]
        );
        series_good.push((delay as f64 / 1000.0, good[0]));
    }
    println!(
        "# cutoff (dashed line in the paper): {:.1} ms",
        cutoff_line * 1e3
    );

    // ---- shape checks ---------------------------------------------------
    println!("#\n# shape checks");
    let better = cutoff_thr_at_min[0] >= oracle_thr_at_min[0]
        && cutoff_thr_at_min[1] >= oracle_thr_at_min[1];
    println!(
        "# cutoff ≥ oracle at shortest T2 ({:.2},{:.2}) vs ({:.2},{:.2}): {}",
        cutoff_thr_at_min[0],
        cutoff_thr_at_min[1],
        oracle_thr_at_min[0],
        oracle_thr_at_min[1],
        if better { "PASS" } else { "WARN" }
    );
    // Delay robustness: useful throughput before the cutoff ≈ at zero
    // delay; beyond the cutoff it collapses.
    let at_zero = series_good.first().map(|p| p.1).unwrap_or(f64::NAN);
    let below: Vec<f64> = series_good
        .iter()
        .filter(|(d, _)| *d < cutoff_line * 0.5)
        .map(|(_, g)| *g)
        .collect();
    let above: Vec<f64> = series_good
        .iter()
        .filter(|(d, _)| *d > cutoff_line * 2.0)
        .map(|(_, g)| *g)
        .collect();
    let flat = below.iter().all(|g| *g > 0.6 * at_zero);
    let drop = above.iter().all(|g| *g < 0.5 * at_zero);
    println!(
        "# delay below cutoff leaves useful throughput intact: {}",
        if flat { "PASS" } else { "WARN" }
    );
    println!(
        "# delay beyond cutoff collapses useful throughput: {}",
        if drop { "PASS" } else { "WARN" }
    );
}
