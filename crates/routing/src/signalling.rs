//! The signalling protocol: source-routed virtual-circuit installation
//! (§3.3: "Installing virtual circuits will be the task of a signalling
//! protocol. This is similar to how RSVP-TE is used to install MPLS
//! virtual circuits").
//!
//! Given a [`CircuitPlan`] from the controller, the signaller:
//!
//! * allocates a link-unique **link-label** on every link of the path
//!   (the MPLS-label analogue the QNP uses as its link layer Purpose ID);
//! * produces one [`RoutingEntry`] per node with the seven fields of
//!   §4.1 plus the cutoff;
//! * records the circuit for teardown.
//!
//! The simulation runtime feeds the entries to the nodes as
//! `InstallCircuit` inputs and opens the per-hop reliable transport
//! connections the QNP requires.

use crate::controller::CircuitPlan;
use crate::topology::Topology;
use qn_link::LinkLabel;
use qn_net::ids::CircuitId;
use qn_net::routing_table::{DownstreamHop, RoutingEntry, UpstreamHop};
use qn_sim::{LinkId, NodeId};
use std::collections::HashMap;

/// A fully installed circuit: entries per node plus label allocations.
#[derive(Clone, Debug)]
pub struct InstalledCircuit {
    /// The circuit id allocated by the signaller.
    pub circuit: CircuitId,
    /// The path, head-end first.
    pub path: Vec<NodeId>,
    /// `(node, entry)` pairs to install, in path order.
    pub entries: Vec<(NodeId, RoutingEntry)>,
    /// The label allocated on each link of the path, in path order.
    pub labels: Vec<(LinkId, LinkLabel)>,
    /// The plan the circuit was built from.
    pub plan: CircuitPlan,
}

/// The source-routed signalling protocol.
pub struct Signaller {
    next_circuit: u64,
    /// Per-link label allocator: labels are link-unique, not global.
    next_label: HashMap<LinkId, u32>,
    installed: HashMap<u64, InstalledCircuit>,
}

impl Default for Signaller {
    fn default() -> Self {
        Self::new()
    }
}

impl Signaller {
    /// A signaller with no circuits.
    pub fn new() -> Self {
        Signaller {
            next_circuit: 1,
            next_label: HashMap::new(),
            installed: HashMap::new(),
        }
    }

    /// Install a circuit along `plan`'s path. Returns the per-node
    /// routing entries for the runtime to deliver.
    pub fn install(&mut self, topology: &Topology, plan: CircuitPlan) -> InstalledCircuit {
        let circuit = CircuitId(self.next_circuit);
        self.next_circuit += 1;
        let path = plan.path.clone();
        assert!(path.len() >= 2, "a circuit spans at least one link");

        // Allocate one link-unique label per link on the path.
        let mut labels = Vec::with_capacity(path.len() - 1);
        for hop in path.windows(2) {
            let link = topology
                .link_between(hop[0], hop[1])
                .expect("plan path must follow topology links");
            let counter = self.next_label.entry(link).or_insert(0);
            let label = LinkLabel(*counter);
            *counter += 1;
            labels.push((link, label));
        }

        // Build per-node entries.
        let mut entries = Vec::with_capacity(path.len());
        for (i, node) in path.iter().enumerate() {
            let upstream = (i > 0).then(|| UpstreamHop {
                node: path[i - 1],
                label: labels[i - 1].1,
            });
            let downstream = (i + 1 < path.len()).then(|| DownstreamHop {
                node: path[i + 1],
                label: labels[i].1,
                min_fidelity: plan.link_fidelity,
                max_lpr: plan.max_lpr,
            });
            entries.push((
                *node,
                RoutingEntry {
                    circuit,
                    upstream,
                    downstream,
                    max_eer: plan.max_eer,
                    cutoff: plan.cutoff,
                },
            ));
        }

        let installed = InstalledCircuit {
            circuit,
            path,
            entries,
            labels,
            plan,
        };
        self.installed.insert(circuit.0, installed.clone());
        installed
    }

    /// Tear a circuit down; returns its record if it existed.
    pub fn teardown(&mut self, circuit: CircuitId) -> Option<InstalledCircuit> {
        self.installed.remove(&circuit.0)
    }

    /// Look up an installed circuit.
    pub fn circuit(&self, circuit: CircuitId) -> Option<&InstalledCircuit> {
        self.installed.get(&circuit.0)
    }

    /// Number of live circuits.
    pub fn live_circuits(&self) -> usize {
        self.installed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::CutoffPolicy;
    use crate::controller::Controller;
    use crate::topology::dumbbell;
    use qn_hardware::params::{FibreParams, HardwareParams};
    use qn_net::routing_table::Role;

    fn setup() -> (Topology, crate::topology::Dumbbell) {
        dumbbell(HardwareParams::simulation(), FibreParams::lab_2m())
    }

    #[test]
    fn install_produces_consistent_entries() {
        let (t, d) = setup();
        let plan = Controller::new(&t, CutoffPolicy::short())
            .plan(d.a0, d.b0, 0.9)
            .unwrap();
        let mut s = Signaller::new();
        let inst = s.install(&t, plan);
        assert_eq!(inst.entries.len(), 4);
        assert_eq!(inst.labels.len(), 3);

        // Roles along the path.
        assert_eq!(inst.entries[0].1.role(), Role::HeadEnd);
        assert_eq!(inst.entries[1].1.role(), Role::Intermediate);
        assert_eq!(inst.entries[2].1.role(), Role::Intermediate);
        assert_eq!(inst.entries[3].1.role(), Role::TailEnd);

        // Adjacent entries agree on labels: node i's downstream label ==
        // node i+1's upstream label.
        for w in inst.entries.windows(2) {
            let down = w[0].1.downstream.as_ref().unwrap();
            let up = w[1].1.upstream.as_ref().unwrap();
            assert_eq!(down.label, up.label);
            assert_eq!(down.node, w[1].0);
            assert_eq!(up.node, w[0].0);
        }
    }

    #[test]
    fn labels_are_link_unique_across_circuits() {
        let (t, d) = setup();
        let c = Controller::new(&t, CutoffPolicy::short());
        let mut s = Signaller::new();
        let i1 = s.install(&t, c.plan(d.a0, d.b0, 0.9).unwrap());
        let i2 = s.install(&t, c.plan(d.a1, d.b1, 0.8).unwrap());
        // Both circuits cross the MA-MB bottleneck; their labels on that
        // link must differ.
        let bottleneck = t.link_between(d.ma, d.mb).unwrap();
        let l1 = i1.labels.iter().find(|(l, _)| *l == bottleneck).unwrap().1;
        let l2 = i2.labels.iter().find(|(l, _)| *l == bottleneck).unwrap().1;
        assert_ne!(l1, l2);
        assert_ne!(i1.circuit, i2.circuit);
        assert_eq!(s.live_circuits(), 2);
    }

    #[test]
    fn teardown_removes_circuit() {
        let (t, d) = setup();
        let c = Controller::new(&t, CutoffPolicy::short());
        let mut s = Signaller::new();
        let inst = s.install(&t, c.plan(d.a0, d.b1, 0.8).unwrap());
        assert!(s.circuit(inst.circuit).is_some());
        assert!(s.teardown(inst.circuit).is_some());
        assert!(s.teardown(inst.circuit).is_none());
        assert_eq!(s.live_circuits(), 0);
    }

    #[test]
    fn entries_carry_plan_parameters() {
        let (t, d) = setup();
        let plan = Controller::new(&t, CutoffPolicy::short())
            .plan(d.a0, d.b0, 0.9)
            .unwrap();
        let f_link = plan.link_fidelity;
        let cutoff = plan.cutoff;
        let mut s = Signaller::new();
        let inst = s.install(&t, plan);
        for (_, e) in &inst.entries {
            assert_eq!(e.cutoff, cutoff);
            if let Some(down) = &e.downstream {
                assert_eq!(down.min_fidelity, f_link);
            }
        }
    }
}
