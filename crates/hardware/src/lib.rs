//! # qn-hardware — NV-centre quantum network hardware model
//!
//! The hardware substrate of the QNP reproduction: everything below the
//! link layer in the paper's stack (Fig 2), parameterised by the Appendix B
//! tables.
//!
//! * [`params`] — Tables 1–2 as the `simulation()` and `near_term()`
//!   parameter sets, plus fibre models;
//! * [`heralding`] — the single-click midpoint-heralding physics with the
//!   bright-state `α` knob (fidelity ↔ rate trade-off);
//! * [`pairs`] — the live entangled-pair store: lazy T1/T2 decoherence,
//!   noisy entanglement swaps, measurements with readout error, the
//!   simulation-only fidelity oracle;
//! * [`device`] — per-node qubit inventories (two communication qubits per
//!   link in the main simulations; one electron + carbons for Fig 11).
//!
//! ## Example: generate, age, and swap pairs
//!
//! ```
//! use qn_hardware::heralding::LinkPhysics;
//! use qn_hardware::pairs::{PairStore, SwapNoise};
//! use qn_hardware::params::{FibreParams, HardwareParams};
//! use qn_hardware::device::QubitId;
//! use qn_sim::{NodeId, SimRng, SimTime, SimDuration};
//!
//! let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
//! let alpha = physics.alpha_for_fidelity(0.95).unwrap();
//! let announced = qn_quantum::BellState::PSI_PLUS;
//! let state = physics.heralded_state(alpha, announced);
//!
//! let mut store = PairStore::new();
//! let id = store.create(
//!     SimTime::ZERO,
//!     state,
//!     announced,
//!     [(NodeId(0), QubitId(0), 3600.0, 60.0), (NodeId(1), QubitId(0), 3600.0, 60.0)],
//! );
//! // The oracle sees the fidelity fall as the pair idles.
//! let f0 = store.fidelity_to(id, announced, SimTime::ZERO);
//! let f1 = store.fidelity_to(id, announced, SimTime::ZERO + SimDuration::from_secs(5));
//! assert!(f1 < f0);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod distill;
pub mod heralding;
pub mod pairs;
pub mod params;

pub use device::{QDevice, QubitId, QubitKind};
pub use distill::{bbpssw_output_fidelity, bbpssw_success_prob, DistillResult};
pub use heralding::LinkPhysics;
pub use pairs::{MeasureResult, PairId, PairStore, PairView, SwapNoise, SwapResult};
pub use params::{FibreParams, GateParams, GateSpec, HardwareParams, ReadoutSpec};
pub use qn_quantum::pairstate::{PairState, StateRep};
