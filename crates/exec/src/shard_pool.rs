//! Threaded executor for partitioned simulations: the worker pool
//! drives one conservative-lookahead epoch per shard per round, with an
//! mpsc barrier between rounds.
//!
//! The per-shard epoch code and the mailbox merge are shared with the
//! serial reference (`qn_sim::shard::{drain_epoch, merge_mailboxes}`),
//! so the only thing this module adds is *where* each epoch runs — and
//! the barrier guarantees the merge sees outboxes in shard order
//! regardless of completion order. The result (shard states and
//! [`PartitionStats`], digest included) is therefore **bit-identical**
//! to [`qn_sim::shard::run_partitioned_serial`] at any thread count.
//!
//! Shard state ping-pongs between the main thread and the pool by
//! *move*: each round, every runnable shard (its queue holds an event
//! inside the epoch window) is boxed into a job carrying its state and
//! queue; the job drains the epoch and sends everything back over the
//! barrier channel. No locks, no shared mutation, no
//! completion-order-dependent behaviour.

use crate::pool::ThreadPool;
use qn_sim::shard::{drain_epoch, merge_mailboxes, OutMsg, PartitionStats, ShardCtx, FNV_OFFSET};
use qn_sim::{EventQueue, SimDuration, SimTime};
use std::sync::mpsc;
use std::sync::Arc;

/// Run a partitioned simulation on `threads` pool workers.
///
/// Semantics are exactly those of
/// [`qn_sim::shard::run_partitioned_serial`]: per-shard state and
/// queues, epochs spanning `[bound, bound + lookahead)`, cross-shard
/// sends only through the epoch mailbox (delay ≥ lookahead, enforced),
/// deterministic `(time, src shard, outbox index)` merge order at the
/// barrier, events dispatched up to and including `until`. The returned
/// shard states and stats are bit-identical to the serial executor at
/// any thread count — `threads <= 1` *is* the serial executor.
///
/// # Panics
///
/// If `lookahead` is zero, or a handler panics on a worker (the first
/// panic is propagated after the pool drains, like
/// [`crate::run_sweep`]).
pub fn run_partitioned<S, E, F>(
    threads: usize,
    shards: Vec<S>,
    initial: Vec<(usize, SimTime, E)>,
    lookahead: SimDuration,
    until: SimTime,
    handler: F,
) -> (Vec<S>, PartitionStats)
where
    S: Send + 'static,
    E: Send + 'static,
    F: Fn(usize, &mut S, SimTime, E, &mut ShardCtx<'_, E>) + Send + Sync + 'static,
{
    assert!(
        lookahead > SimDuration::ZERO,
        "partitioned runs need a positive lookahead"
    );
    let n = shards.len();
    if threads <= 1 || n <= 1 {
        return qn_sim::shard::run_partitioned_serial(shards, initial, lookahead, until, handler);
    }

    let mut queues: Vec<EventQueue<E>> = (0..n).map(|_| EventQueue::new()).collect();
    for (shard, at, event) in initial {
        queues[shard.min(n - 1)].push(at, event);
    }
    let mut stats = PartitionStats {
        mailbox_digest: FNV_OFFSET,
        ..PartitionStats::default()
    };

    let handler = Arc::new(handler);
    let pool = ThreadPool::new(threads.min(n));
    // Slots hold each shard's (state, queue) while it is on the main
    // side of the barrier; `None` marks it in flight on a worker.
    let mut slots: Vec<Option<(S, EventQueue<E>)>> = shards
        .into_iter()
        .zip(queues)
        .map(|(s, q)| Some((s, q)))
        .collect();

    loop {
        let bound = slots
            .iter_mut()
            .filter_map(|slot| slot.as_mut().and_then(|(_, q)| q.peek_time()))
            .min();
        let Some(bound) = bound else {
            break;
        };
        if bound > until {
            break;
        }
        let horizon = bound.saturating_add(lookahead);
        stats.epochs += 1;

        // Fan out: every shard whose next event falls inside the epoch
        // window runs this round; idle shards stay on the main side.
        let (tx, rx) = mpsc::channel();
        let mut in_flight = 0usize;
        for (i, slot) in slots.iter_mut().enumerate() {
            let runnable = slot
                .as_mut()
                .and_then(|(_, q)| q.peek_time())
                .is_some_and(|t| t < horizon && t <= until);
            if !runnable {
                continue;
            }
            let (mut state, mut queue) = slot.take().expect("runnable slot is occupied");
            let tx = tx.clone();
            let handler = Arc::clone(&handler);
            in_flight += 1;
            pool.execute(move || {
                let (outbox, processed) = drain_epoch(
                    i, n, lookahead, &mut state, &mut queue, horizon, until, &*handler,
                );
                // The receiver only disappears if the main thread is
                // already unwinding.
                let _ = tx.send((i, state, queue, outbox, processed));
            });
        }
        drop(tx);

        // Barrier: collect every shard back. Completion order is
        // thread-dependent; everything below re-establishes shard
        // order before any of it can matter.
        let mut outboxes: Vec<Vec<OutMsg<E>>> = (0..n).map(|_| Vec::new()).collect();
        let mut processed_by_shard = vec![0u64; n];
        for _ in 0..in_flight {
            match rx.recv() {
                Ok((i, state, queue, outbox, processed)) => {
                    outboxes[i] = outbox;
                    processed_by_shard[i] = processed;
                    slots[i] = Some((state, queue));
                }
                Err(_) => {
                    // A worker died mid-epoch: joining the pool
                    // re-raises its panic with the original payload.
                    pool.join();
                    unreachable!("worker vanished without panicking");
                }
            }
        }
        for p in &processed_by_shard {
            stats.processed += p;
        }

        // Deterministic merge, in shard order — identical to serial.
        let mut queue_refs: Vec<EventQueue<E>> = slots
            .iter_mut()
            .map(|slot| {
                let (_, q) = slot.as_mut().expect("all shards returned at the barrier");
                std::mem::take(q)
            })
            .collect();
        merge_mailboxes(outboxes, &mut queue_refs, &mut stats);
        for (slot, q) in slots.iter_mut().zip(queue_refs) {
            slot.as_mut().expect("occupied").1 = q;
        }
    }

    pool.join();
    let shards = slots
        .into_iter()
        .map(|slot| slot.expect("run left every shard in place").0)
        .collect();
    (shards, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::shard::run_partitioned_serial;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    fn la(ps: u64) -> SimDuration {
        SimDuration::from_ps(ps)
    }

    /// A deterministic per-shard workload: xorshift churn plus
    /// cross-shard pings, heavier on low shard indices so completion
    /// order inverts shard order under parallel execution.
    fn churn(
        shard: usize,
        state: &mut (u64, Vec<(u64, u64)>),
        now: SimTime,
        payload: u64,
        ctx: &mut ShardCtx<'_, u64>,
    ) {
        let spins = 1 + (3 - shard.min(3)) * 50;
        for _ in 0..spins {
            state.0 ^= state.0 << 13;
            state.0 ^= state.0 >> 7;
            state.0 ^= state.0 << 17;
            state.0 = state.0.wrapping_add(payload);
        }
        state.1.push((now.as_ps(), payload));
        if payload > 0 {
            let dst = (shard + 1) % ctx.n_shards();
            ctx.send(dst, la(10), payload - 1);
            if payload % 3 == 0 {
                // Some local follow-up work under the lookahead bound.
                ctx.schedule_in(la(2), payload / 2);
            }
        }
    }

    fn seeds(n: usize) -> (Vec<(u64, Vec<(u64, u64)>)>, Vec<(usize, SimTime, u64)>) {
        let shards = (0..n).map(|i| (0x9e37 + i as u64, Vec::new())).collect();
        let initial = (0..n).map(|i| (i, t(i as u64), 40 + i as u64)).collect();
        (shards, initial)
    }

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let (shards, initial) = seeds(4);
        let (serial, serial_stats) =
            run_partitioned_serial(shards, initial, la(10), SimTime::MAX, churn);
        for threads in [2, 3, 4, 8] {
            let (shards, initial) = seeds(4);
            let (par, par_stats) =
                run_partitioned(threads, shards, initial, la(10), SimTime::MAX, churn);
            assert_eq!(par, serial, "{threads} threads");
            assert_eq!(
                par_stats, serial_stats,
                "{threads} threads (stats + digest)"
            );
        }
    }

    #[test]
    fn horizon_bound_matches_serial() {
        let (shards, initial) = seeds(3);
        let (serial, s1) = run_partitioned_serial(shards, initial, la(10), t(200), churn);
        let (shards, initial) = seeds(3);
        let (par, s2) = run_partitioned(3, shards, initial, la(10), t(200), churn);
        assert_eq!(par, serial);
        assert_eq!(s1, s2);
    }

    #[test]
    fn single_thread_is_the_serial_path() {
        let (shards, initial) = seeds(2);
        let (a, s1) = run_partitioned(1, shards, initial, la(10), SimTime::MAX, churn);
        let (shards, initial) = seeds(2);
        let (b, s2) = run_partitioned_serial(shards, initial, la(10), SimTime::MAX, churn);
        assert_eq!(a, b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn worker_panic_propagates() {
        let err = std::panic::catch_unwind(|| {
            run_partitioned(
                2,
                vec![(), ()],
                vec![(0, t(0), 1u64), (1, t(0), 2u64)],
                la(5),
                SimTime::MAX,
                |shard, _state: &mut (), _now, _v, _ctx| {
                    if shard == 1 {
                        panic!("shard 1 exploded");
                    }
                },
            )
        })
        .expect_err("the shard panic must surface");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("shard 1 exploded"), "payload: {msg:?}");
    }
}
