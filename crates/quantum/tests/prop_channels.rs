//! Property tests for the quantum engine: channel physicality, unitary
//! invariants, the composition laws the rest of the stack leans on, and
//! a `qn_testkit` model test of the Pauli-frame algebra.

use proptest::prelude::*;
use qn_quantum::bell::BellState;
use qn_quantum::channels;
use qn_quantum::formulas;
use qn_quantum::gates;
use qn_quantum::gates::Pauli;
use qn_quantum::state::DensityMatrix;
use qn_quantum::C64;
use qn_testkit::{ModelSpec, ModelTest};

/// Pauli-frame tracking model: the QNP never simulates corrections —
/// it tracks the Bell state as two XOR bits (`B(x,z)`). The model is
/// that two-bit frame; the system is the full density matrix with
/// Pauli unitaries applied to either qubit. After every operation the
/// simulated state must still be *exactly* the tracked Bell state.
mod frame_model {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct ApplyPauli {
        /// 0 = X, 1 = Y, 2 = Z.
        pub pauli: u8,
        /// Which qubit of the pair.
        pub second_qubit: bool,
    }

    pub struct FrameSpec;

    impl ModelSpec for FrameSpec {
        type Op = ApplyPauli;
        /// The tracked `(x, z)` correction bits.
        type Model = BellState;
        type System = DensityMatrix;

        fn new_model(&self) -> BellState {
            BellState::PHI_PLUS
        }

        fn new_system(&self) -> DensityMatrix {
            BellState::PHI_PLUS.density()
        }

        fn op_strategy(&self) -> BoxedStrategy<ApplyPauli> {
            (0u8..3, any::<bool>())
                .prop_map(|(pauli, second_qubit)| ApplyPauli {
                    pauli,
                    second_qubit,
                })
                .boxed()
        }

        fn apply(
            &self,
            model: &mut BellState,
            system: &mut DensityMatrix,
            op: &ApplyPauli,
        ) -> Result<(), String> {
            let pauli = match op.pauli {
                0 => Pauli::X,
                1 => Pauli::Y,
                _ => Pauli::Z,
            };
            system.apply_unitary(&pauli.matrix(), &[usize::from(op.second_qubit)]);
            // A Pauli on *either* qubit flips the same frame bits: X
            // flips x, Z flips z, Y flips both (X^T = X, Z^T = Z and
            // Y^T = -Y differ only by global phase across the ⊗-swap).
            *model =
                BellState::from_bits(model.x ^ (pauli != Pauli::Z), model.z ^ (pauli != Pauli::X));
            Ok(())
        }

        fn invariants(&self, model: &BellState, system: &DensityMatrix) -> Result<(), String> {
            let f = system.fidelity_pure(&model.amplitudes());
            if (f - 1.0).abs() > 1e-9 {
                return Err(format!(
                    "simulated state has fidelity {f} to tracked {model}"
                ));
            }
            Ok(())
        }
    }
}

/// Random Pauli sequences on either qubit: the density-matrix
/// simulation must stay in lock-step with the two-bit Pauli frame.
#[test]
fn pauli_frame_matches_density_matrix() {
    ModelTest::new("quantum_pauli_frame_matches_model", frame_model::FrameSpec)
        .cases(128)
        .max_ops(32)
        .run();
}

/// An arbitrary single-qubit pure state.
fn arb_qubit() -> impl Strategy<Value = DensityMatrix> {
    (0.0f64..std::f64::consts::PI, 0.0f64..std::f64::consts::TAU).prop_map(|(theta, phi)| {
        DensityMatrix::pure(&[
            C64::real((theta / 2.0).cos()),
            C64::cis(phi).scale((theta / 2.0).sin()),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every noise channel is trace preserving and positivity preserving
    /// (diagonal entries stay in [0,1]) on arbitrary pure inputs.
    #[test]
    fn channels_preserve_physicality(rho in arb_qubit(), p in 0.0f64..1.0) {
        for kraus in [
            channels::depolarizing(p),
            channels::dephasing(p / 2.0),
            channels::bit_flip(p),
            channels::amplitude_damping(p),
        ] {
            let mut r = rho.clone();
            r.apply_kraus(&kraus, &[0]);
            prop_assert!((r.trace() - 1.0).abs() < 1e-9);
            prop_assert!(r.purity() <= 1.0 + 1e-9);
            let p1 = r.prob_one(0);
            prop_assert!((0.0..=1.0).contains(&p1));
        }
    }

    /// Unitaries preserve purity and trace; channels never increase
    /// purity beyond the input's.
    #[test]
    fn unitaries_preserve_purity(rho in arb_qubit(), theta in 0.0f64..6.2) {
        let mut r = rho.clone();
        r.apply_unitary(&gates::rx(theta), &[0]);
        r.apply_unitary(&gates::rz(theta * 0.7), &[0]);
        prop_assert!((r.purity() - rho.purity()).abs() < 1e-9);
        prop_assert!((r.trace() - 1.0).abs() < 1e-9);
    }

    /// Depolarizing channels compose: two applications with p1 then p2
    /// equal one with `p = p1 + p2 − p1·p2` (survival probabilities
    /// multiply).
    #[test]
    fn depolarizing_composes(rho in arb_qubit(), p1 in 0.0f64..0.9, p2 in 0.0f64..0.9) {
        let mut a = rho.clone();
        a.apply_kraus(&channels::depolarizing(p1), &[0]);
        a.apply_kraus(&channels::depolarizing(p2), &[0]);
        let mut b = rho.clone();
        let p = p1 + p2 - p1 * p2;
        b.apply_kraus(&channels::depolarizing(p), &[0]);
        prop_assert!(a.matrix().approx_eq(b.matrix(), 1e-9));
    }

    /// Dephasing composes the same way on the coherence factor:
    /// (1−2p1)(1−2p2) = 1−2p.
    #[test]
    fn dephasing_composes(rho in arb_qubit(), p1 in 0.0f64..0.5, p2 in 0.0f64..0.5) {
        let mut a = rho.clone();
        a.apply_kraus(&channels::dephasing(p1), &[0]);
        a.apply_kraus(&channels::dephasing(p2), &[0]);
        let mut b = rho.clone();
        let p = 0.5 * (1.0 - (1.0 - 2.0 * p1) * (1.0 - 2.0 * p2));
        b.apply_kraus(&channels::dephasing(p), &[0]);
        prop_assert!(a.matrix().approx_eq(b.matrix(), 1e-9));
    }

    /// The Werner swap formula is symmetric and never exceeds either
    /// input fidelity (for inputs above the 1/4 white-noise floor).
    #[test]
    fn swap_fidelity_bounds(f1 in 0.25f64..1.0, f2 in 0.25f64..1.0) {
        let f = formulas::swap_fidelity(f1, f2);
        prop_assert!((formulas::swap_fidelity(f2, f1) - f).abs() < 1e-12);
        prop_assert!(f <= f1.max(f2) + 1e-12);
        prop_assert!(f >= 0.25 - 1e-12);
    }

    /// Fidelity to any Bell state is invariant under exchanging the two
    /// qubits of the pair (the property that lets the head apply
    /// corrections on its own qubit).
    #[test]
    fn bell_fidelity_symmetric_under_qubit_exchange(
        idx in 0usize..4,
        p in 0.0f64..0.4,
        u in 0.0f64..1.0,
    ) {
        let target = BellState::from_index(idx);
        // A noisy pair: Bell state + one-sided noise.
        let mut rho = BellState::from_index((idx + 1) % 4).density();
        rho.apply_kraus(&channels::depolarizing(p), &[0]);
        rho.apply_kraus(&channels::dephasing(p * u / 2.0), &[1]);
        let f = rho.fidelity_pure(&target.amplitudes());
        let swapped = rho.partial_trace_keep(&[1, 0]);
        let f_swapped = swapped.fidelity_pure(&target.amplitudes());
        prop_assert!((f - f_swapped).abs() < 1e-9);
    }

    /// Measurement statistics are basis-consistent: the probability of
    /// outcome 1 equals (1 − ⟨Z⟩)/2.
    #[test]
    fn measurement_matches_expectation(rho in arb_qubit()) {
        let p1 = rho.prob_one(0);
        let z = rho.expectation(&gates::z());
        prop_assert!((p1 - (1.0 - z) / 2.0).abs() < 1e-9);
    }
}
