//! Measurements: Pauli-basis single-qubit measurement and the two-qubit
//! Bell-state measurement at the heart of entanglement swapping.
//!
//! Two Bell-measurement implementations exist in the stack:
//!
//! * [`bell_measure_ideal`] — projector-based, noise-free; used by tests
//!   and by the lazy-tracking verification.
//! * the circuit used by real hardware (CNOT → H → two Z measurements),
//!   which `qn-hardware` assembles from noisy primitive gates so that gate
//!   and readout errors propagate into the post-swap state exactly as the
//!   paper's P3 mechanism describes. [`swap_circuit_outcome`] decodes its
//!   classical bits.

use crate::bell::BellState;
use crate::complex::C64;
use crate::gates::{self, Pauli};
use crate::matrix::CMatrix;
use crate::state::DensityMatrix;

/// Measure `qubit` in the given Pauli basis using uniform sample `u`.
///
/// Returns the ±1 outcome encoded as `false` (+1) / `true` (−1) and leaves
/// the qubit collapsed in the corresponding eigenstate (expressed in the
/// computational basis after the standard basis-change rotation).
pub fn measure_pauli(rho: &mut DensityMatrix, qubit: usize, basis: Pauli, u: f64) -> bool {
    match basis {
        Pauli::Z => {}
        Pauli::X => rho.apply_unitary(&gates::h(), &[qubit]),
        Pauli::Y => {
            // Rotate the Y eigenbasis onto Z: apply S† then H.
            rho.apply_unitary(&gates::sdg(), &[qubit]);
            rho.apply_unitary(&gates::h(), &[qubit]);
        }
        Pauli::I => panic!("cannot measure in the identity basis"),
    }
    rho.measure_z(qubit, u)
}

/// Rank-1 projector |ψ⟩⟨ψ| from four amplitudes.
fn projector(amps: [C64; 4]) -> CMatrix {
    let mut m = CMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            m[(i, j)] = amps[i] * amps[j].conj();
        }
    }
    m
}

/// Ideal Bell-state measurement of qubits `(qa, qb)`.
///
/// Projects onto one of the four Bell states (sampled via uniform
/// `u ∈ [0,1)`), removes the measured qubits, and returns the outcome
/// together with the post-measurement state of the remaining qubits
/// (`None` when the whole register was measured). Remaining qubits keep
/// their relative order.
pub fn bell_measure_ideal(
    rho: &DensityMatrix,
    qa: usize,
    qb: usize,
    u: f64,
) -> (BellState, Option<DensityMatrix>) {
    assert!(rho.num_qubits() >= 2);
    assert_ne!(qa, qb);

    // Outcome probabilities.
    let fulls: Vec<CMatrix> = BellState::ALL
        .iter()
        .map(|b| rho.embed(&projector(b.amplitudes()), &[qa, qb]))
        .collect();
    let probs: Vec<f64> = fulls
        .iter()
        .map(|full| (full * rho.matrix()).trace().re.max(0.0))
        .collect();
    let total: f64 = probs.iter().sum();
    debug_assert!(
        (total - 1.0).abs() < 1e-6,
        "Bell projectors not complete: {total}"
    );

    // Sample the outcome.
    let mut x = u * total;
    let mut chosen = 3;
    for (i, p) in probs.iter().enumerate() {
        x -= p;
        if x <= 0.0 && *p > 0.0 {
            chosen = i;
            break;
        }
    }
    let outcome = BellState::ALL[chosen];

    // Project only the selected branch and renormalise.
    let full = &fulls[chosen];
    let projected = &(full * rho.matrix()) * full;
    let p = projected.trace().re;
    let normalised = projected.scale(1.0 / p.max(1e-300));

    let keep: Vec<usize> = (0..rho.num_qubits())
        .filter(|q| *q != qa && *q != qb)
        .collect();
    if keep.is_empty() {
        return (outcome, None);
    }
    let post = DensityMatrix::from_matrix_unchecked(normalised).partial_trace_keep(&keep);
    (outcome, Some(post))
}

/// Decode the two Z-measurement outcomes of the standard swap circuit
/// (CNOT with control `a` and target `b`; H on `a`; measure both in Z)
/// into the Bell outcome: `x = m_b`, `z = m_a`.
pub fn swap_circuit_outcome(m_control: bool, m_target: bool) -> BellState {
    BellState::from_bits(m_target, m_control)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_x_measurement_of_plus_state_is_deterministic() {
        // |+> measured in X always yields +1 (false).
        for u in [0.01, 0.5, 0.99] {
            let mut rho = DensityMatrix::basis(1, 0);
            rho.apply_unitary(&gates::h(), &[0]);
            assert!(!measure_pauli(&mut rho, 0, Pauli::X, u));
        }
    }

    #[test]
    fn pauli_y_measurement_of_y_eigenstate() {
        // |+i> = (|0> + i|1>)/√2 measured in Y yields +1 always.
        for u in [0.1, 0.9] {
            let mut rho = DensityMatrix::pure(&[
                C64::real(std::f64::consts::FRAC_1_SQRT_2),
                C64::new(0.0, std::f64::consts::FRAC_1_SQRT_2),
            ]);
            assert!(!measure_pauli(&mut rho, 0, Pauli::Y, u));
        }
    }

    #[test]
    fn z_measurement_of_one_is_true() {
        let mut rho = DensityMatrix::basis(1, 1);
        assert!(measure_pauli(&mut rho, 0, Pauli::Z, 0.5));
    }

    #[test]
    fn bell_measurement_of_bell_state_is_deterministic() {
        for b in BellState::ALL {
            let rho = b.density();
            for u in [0.0, 0.3, 0.99] {
                let (outcome, rest) = bell_measure_ideal(&rho, 0, 1, u);
                assert_eq!(outcome, b, "measuring {b} must yield {b}");
                assert!(rest.is_none(), "no qubits should remain");
            }
        }
    }

    #[test]
    fn bell_measurement_on_product_state_splits_half_half() {
        // |00⟩ overlaps Φ+ and Φ- each with probability 1/2.
        let rho = DensityMatrix::basis(2, 0);
        let (o1, _) = bell_measure_ideal(&rho, 0, 1, 0.25);
        let (o2, _) = bell_measure_ideal(&rho, 0, 1, 0.75);
        assert_eq!(o1, BellState::PHI_PLUS);
        assert_eq!(o2, BellState::PHI_MINUS);
    }

    #[test]
    fn ideal_swap_entangles_outer_qubits() {
        // Two Φ+ pairs (A,B1), (B2,C); Bell-measure (B1,B2); the remaining
        // (A,C) pair must be the Bell state predicted by the XOR algebra.
        let joint = BellState::PHI_PLUS
            .density()
            .tensor(&BellState::PHI_PLUS.density());
        for u in [0.1, 0.35, 0.6, 0.85] {
            let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, u);
            let rest = rest.expect("A and C remain");
            assert_eq!(rest.num_qubits(), 2);
            let predicted = BellState::PHI_PLUS.combine(BellState::PHI_PLUS, outcome);
            let f = rest.fidelity_pure(&predicted.amplitudes());
            assert!(
                (f - 1.0).abs() < 1e-9,
                "outcome {outcome}: fidelity to predicted {predicted} was {f}"
            );
        }
    }

    #[test]
    fn swap_circuit_decoding_matches_projective_measurement() {
        // Run the swap circuit on each pure Bell state and compare the
        // decoded outcome with the state identity.
        for b in BellState::ALL {
            let mut rho = b.density();
            rho.apply_unitary(&gates::cnot(), &[0, 1]);
            rho.apply_unitary(&gates::h(), &[0]);
            let ma = rho.measure_z(0, 0.5);
            let mb = rho.measure_z(1, 0.5);
            assert_eq!(swap_circuit_outcome(ma, mb), b);
        }
    }
}
