//! Quickstart: generate end-to-end entangled pairs over the paper's
//! Fig 7 dumbbell network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qnp::prelude::*;

fn main() {
    // 1. Build the Fig 7 topology: A0,A1 — MA — MB — B0,B1 with identical
    //    2 m lab links on the optimistic hardware of Appendix B.
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(42).build();

    // 2. The routing controller plans an A0→B0 circuit for end-to-end
    //    fidelity 0.85 (it budgets per-link fidelities for the worst case)
    //    and the signalling protocol installs it at every node.
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .expect("fidelity 0.85 over three hops is attainable");
    let plan = &sim.installed(vc).unwrap().plan;
    println!("circuit {vc} installed along {:?}", plan.path);
    println!(
        "  link fidelity budget {:.4}, cutoff {:.1} ms, max LPR {:.0} pairs/s",
        plan.link_fidelity,
        plan.cutoff.as_millis_f64(),
        plan.max_lpr
    );

    // 3. An application at A0 requests five KEEP pairs.
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            id: RequestId(1),
            head: Address {
                node: d.a0,
                identifier: 7,
            },
            tail: Address {
                node: d.b0,
                identifier: 9,
            },
            min_fidelity: 0.85,
            demand: Demand::Pairs {
                n: 5,
                deadline: None,
            },
            request_type: RequestType::Keep,
            final_state: None,
        },
    );

    // 4. Run the network.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));

    // 5. Inspect what the applications received.
    let app = sim.app();
    println!("\ndeliveries:");
    for rec in &app.deliveries {
        println!(
            "  t={:<12} node {} req {} seq {} {:?}  fidelity {}",
            format!("{}", rec.time),
            rec.node,
            rec.request,
            rec.sequence,
            rec.payload,
            rec.oracle_fidelity
                .map(|f| format!("{f:.4}"))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    if let Some(lat) = app.request_latency(vc, RequestId(1)) {
        println!("\nrequest completed in {lat}");
    }
    println!(
        "mean delivered fidelity at A0: {:.4} (requested ≥ 0.85)",
        app.mean_fidelity(vc, d.a0).unwrap_or(f64::NAN)
    );
    println!(
        "pairs discarded along the way (cutoffs, surplus): {}",
        sim.discarded_pairs()
    );
}
