//! **Ablation** — the cutoff design choice (DESIGN.md: "Cutoff time",
//! paper §4.1).
//!
//! Sweeps the cutoff timeout at a fixed memory lifetime (T2* = 1.6 s)
//! and reports the throughput/fidelity trade-off that motivates the
//! routing protocol's choice:
//!
//! * too tight a cutoff: pairs rarely meet a partner in time —
//!   throughput collapses, fidelity is pristine;
//! * too loose: pairs idle and decohere — throughput of *useful* pairs
//!   collapses from the other side;
//! * the 1.5 %-loss rule sits near the knee.
//!
//! Run: `cargo bench --bench ablation_cutoff`
//! (knobs: `QNP_RUNS`, `QNP_THREADS`).

use qn_bench::{cutoff_sweep, mean_finite, runs, seed_block, Baseline, Direction};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_routing::budget::cutoff_for_fidelity_loss;
use qn_routing::{dumbbell, CircuitPlan, CutoffPolicy};
use qn_sim::SimDuration;

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    let t2 = 1.6;
    let fidelity = 0.85;
    let params = HardwareParams::simulation().with_electron_t2(t2);
    let reference = cutoff_for_fidelity_loss(&params, fidelity, 0.015);
    let seeds = seed_block(5000, n_runs);
    println!("# Ablation — cutoff sweep at T2* = {t2} s, target F = {fidelity}");
    println!(
        "# routing's 1.5%-loss cutoff for reference: {:.1} ms",
        reference.as_millis_f64()
    );
    println!("# cutoff_ms   throughput_pairs_per_s   mean_fidelity   discards");

    let mut baseline = Baseline::new("ablation_cutoff")
        .config_num("runs", n_runs as f64)
        .config_num("t2_s", t2)
        .config_num("fidelity", fidelity)
        .config_num("reference_cutoff_ms", reference.as_millis_f64())
        .direction("throughput_pairs_per_s", Direction::HigherIsBetter)
        .direction("mean_fidelity", Direction::HigherIsBetter)
        .direction("discards", Direction::Informational);

    // Use a fixed-fidelity plan so only the cutoff varies.
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let base_plan = {
        let controller = qn_routing::Controller::new(&topology, CutoffPolicy::Manual(reference));
        controller.plan(d.a0, d.b0, fidelity).expect("feasible")
    };

    for factor in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let cutoff = reference.mul_f64(factor);
        let plan = CircuitPlan {
            cutoff,
            ..base_plan.clone()
        };
        let points = cutoff_sweep(&seeds, t2, &plan, SimDuration::from_secs(10));
        let thr = points.iter().map(|p| p.throughput).sum::<f64>() / n_runs as f64;
        let fid = mean_finite(points.iter().map(|p| p.mean_fidelity));
        let discards: u64 = points.iter().map(|p| p.discards).sum();
        println!(
            "{:10.1}   {thr:22.2}   {fid:13.4}   {}",
            cutoff.as_millis_f64(),
            discards / n_runs
        );
        baseline.point(
            format!("factor={factor}"),
            &[
                ("throughput_pairs_per_s", thr),
                ("mean_fidelity", fid),
                ("discards", (discards / n_runs) as f64),
            ],
        );
    }
    println!("#\n# expected shape: throughput rises then saturates with the cutoff;");
    println!("# fidelity monotonically falls; the 1.5% rule sits near the knee.");

    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
