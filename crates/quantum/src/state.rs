//! Density-matrix states.
//!
//! All quantum state in the simulation lives in [`DensityMatrix`] values of
//! one to four qubits (two entangled pairs joined for a swap). Mixed states
//! are required — every noise process in the paper (imperfect link pairs,
//! gate depolarizing, T1/T2 decay, readout error) produces them.
//!
//! Randomness is injected by the caller: every probabilistic operation
//! takes a uniform `u ∈ [0,1)` sample, keeping this crate free of RNG state
//! and trivially deterministic to test.

use crate::complex::C64;
use crate::matrix::{embed_op_into, CMatrix};
use std::cell::RefCell;

/// Tolerance for trace/hermiticity sanity checks.
const EPS: f64 = 1e-9;

/// Reusable per-thread work buffers for the in-place kernels: the hot
/// paths (`apply_unitary`, `apply_kraus`, `project_z`) allocate nothing
/// after the first 16×16 operation on a thread. The buffers never nest
/// (no kernel calls another kernel while holding the borrow).
struct Scratch {
    full: CMatrix,
    tmp: CMatrix,
    term: CMatrix,
    acc: CMatrix,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch {
        full: CMatrix::zeros(1, 1),
        tmp: CMatrix::zeros(1, 1),
        term: CMatrix::zeros(1, 1),
        acc: CMatrix::zeros(1, 1),
    });
}

/// A mixed state of `n` qubits as a 2ⁿ×2ⁿ density matrix.
///
/// Qubit 0 is the most significant bit of a basis index (matching
/// [`crate::gates`]).
#[derive(Clone, PartialEq, Debug)]
pub struct DensityMatrix {
    n: usize,
    m: CMatrix,
}

impl DensityMatrix {
    /// A pure state from (possibly unnormalised) amplitudes.
    pub fn pure(amps: &[C64]) -> Self {
        let dim = amps.len();
        assert!(dim.is_power_of_two() && dim >= 2, "bad amplitude count");
        let n = dim.trailing_zeros() as usize;
        let norm2: f64 = amps.iter().map(|a| a.abs2()).sum();
        assert!(norm2 > 0.0, "zero state vector");
        let scale = 1.0 / norm2;
        let mut m = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                m[(i, j)] = (amps[i] * amps[j].conj()).scale(scale);
            }
        }
        DensityMatrix { n, m }
    }

    /// The computational basis state `|idx⟩` of `n` qubits.
    pub fn basis(n: usize, idx: usize) -> Self {
        let dim = 1usize << n;
        assert!(idx < dim);
        let mut amps = vec![C64::ZERO; dim];
        amps[idx] = C64::ONE;
        DensityMatrix::pure(&amps)
    }

    /// The maximally mixed state `I/2ⁿ`.
    pub fn maximally_mixed(n: usize) -> Self {
        let dim = 1usize << n;
        DensityMatrix {
            n,
            m: CMatrix::identity(dim).scale(1.0 / dim as f64),
        }
    }

    /// Wrap an explicit matrix; validates dimensions, hermiticity and unit
    /// trace. This is the constructor for API boundaries and tests; hot
    /// paths that build matrices known-valid by construction use
    /// [`DensityMatrix::from_matrix_unchecked`].
    pub fn from_matrix(m: CMatrix) -> Self {
        assert!(m.is_square());
        let dim = m.rows();
        assert!(dim.is_power_of_two() && dim >= 2);
        assert!(m.is_hermitian(1e-7), "density matrix must be hermitian");
        let tr = m.trace();
        assert!(
            (tr.re - 1.0).abs() < 1e-6 && tr.im.abs() < 1e-9,
            "density matrix must have unit trace, got {tr:?}"
        );
        DensityMatrix {
            n: dim.trailing_zeros() as usize,
            m,
        }
    }

    /// Wrap a matrix that is a valid density matrix *by construction*
    /// (heralded-state assembly, projective-measurement branches).
    /// Validation runs only under `debug_assertions`, keeping release
    /// hot paths free of the O(n²) hermiticity sweep.
    pub fn from_matrix_unchecked(m: CMatrix) -> Self {
        debug_assert!(m.is_square());
        debug_assert!(m.rows().is_power_of_two() && m.rows() >= 2);
        debug_assert!(m.is_hermitian(1e-7), "density matrix must be hermitian");
        debug_assert!(
            (m.trace().re - 1.0).abs() < 1e-6 && m.trace().im.abs() < 1e-9,
            "density matrix must have unit trace, got {:?}",
            m.trace()
        );
        DensityMatrix {
            n: m.rows().trailing_zeros() as usize,
            m,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hilbert-space dimension 2ⁿ.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// Borrow the underlying matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.m
    }

    /// Trace (≈1 for a valid state).
    pub fn trace(&self) -> f64 {
        self.m.trace().re
    }

    /// Purity `Tr ρ²` (1 for pure states, `1/2ⁿ` for maximally mixed).
    pub fn purity(&self) -> f64 {
        (&self.m * &self.m).trace().re
    }

    /// Tensor product `self ⊗ other`.
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        DensityMatrix {
            n: self.n + other.n,
            m: self.m.kron(&other.m),
        }
    }

    /// Expand a `k`-qubit operator onto the given (distinct) target qubits
    /// of this state's space. The first target corresponds to the most
    /// significant bit of the operator's index.
    pub fn embed(&self, op: &CMatrix, targets: &[usize]) -> CMatrix {
        crate::matrix::embed_op(self.n, op, targets)
    }

    /// Apply a unitary to the given target qubits: `ρ ← UρU†`.
    /// Allocation-free after warm-up: embedding and both products go
    /// through the per-thread scratch buffers, with arithmetic order
    /// identical to the textbook `U·ρ·U†` expression.
    pub fn apply_unitary(&mut self, u: &CMatrix, targets: &[usize]) {
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            embed_op_into(self.n, u, targets, &mut s.full);
            CMatrix::mul_into(&s.full, &self.m, &mut s.tmp);
            CMatrix::mul_dagger_into(&s.tmp, &s.full, &mut s.acc);
            std::mem::swap(&mut self.m, &mut s.acc);
        });
    }

    /// Apply a Kraus channel `{Kᵢ}` to the given targets:
    /// `ρ ← Σᵢ KᵢρKᵢ†`. The set must be trace preserving (checked loosely).
    /// In-place via the scratch buffers; each term is fully formed before
    /// being accumulated so the summation order (and therefore the exact
    /// floating-point result) matches the allocating formulation.
    pub fn apply_kraus(&mut self, kraus: &[CMatrix], targets: &[usize]) {
        let dim = self.dim();
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            s.acc.reset_zeros(dim, dim);
            for k in kraus {
                embed_op_into(self.n, k, targets, &mut s.full);
                CMatrix::mul_into(&s.full, &self.m, &mut s.tmp);
                CMatrix::mul_dagger_into(&s.tmp, &s.full, &mut s.term);
                s.acc.add_assign_mat(&s.term);
            }
            std::mem::swap(&mut self.m, &mut s.acc);
        });
        let tr = self.m.trace().re;
        debug_assert!(
            (tr - 1.0).abs() < 1e-6,
            "channel not trace preserving: {tr}"
        );
        // Remove accumulated floating-point drift.
        if (tr - 1.0).abs() > EPS {
            self.m.scale_in_place(1.0 / tr);
        }
    }

    /// Probability that a Z-measurement of `qubit` yields 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.n);
        let shift = self.n - 1 - qubit;
        let mut p = 0.0;
        for i in 0..self.dim() {
            if (i >> shift) & 1 == 1 {
                p += self.m[(i, i)].re;
            }
        }
        p.clamp(0.0, 1.0)
    }

    /// Measure `qubit` in the Z basis using uniform sample `u ∈ [0,1)`.
    /// The state collapses (and renormalises); the qubit remains in the
    /// register in the corresponding eigenstate.
    pub fn measure_z(&mut self, qubit: usize, u: f64) -> bool {
        let p1 = self.prob_one(qubit);
        let outcome = u < p1;
        self.project_z(qubit, outcome);
        outcome
    }

    /// Project `qubit` onto the Z eigenstate `outcome` and renormalise.
    /// Panics (debug) if the outcome has ~zero probability.
    pub fn project_z(&mut self, qubit: usize, outcome: bool) {
        let shift = self.n - 1 - qubit;
        let dim = self.dim();
        let want = usize::from(outcome);
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            s.full.reset_zeros(dim, dim);
            for i in 0..dim {
                if (i >> shift) & 1 == want {
                    s.full[(i, i)] = C64::ONE;
                }
            }
            CMatrix::mul_into(&s.full, &self.m, &mut s.tmp);
            CMatrix::mul_into(&s.tmp, &s.full, &mut s.acc);
            std::mem::swap(&mut self.m, &mut s.acc);
        });
        let p = self.m.trace().re;
        debug_assert!(p > 1e-12, "projecting onto zero-probability outcome");
        self.m.scale_in_place(1.0 / p.max(1e-300));
    }

    /// Partial trace keeping the listed qubits, in the order given.
    pub fn partial_trace_keep(&self, keep: &[usize]) -> DensityMatrix {
        let n = self.n;
        let k = keep.len();
        assert!(k >= 1 && k <= n);
        let rest: Vec<usize> = (0..n).filter(|q| !keep.contains(q)).collect();
        let kdim = 1usize << k;
        let rdim = 1usize << rest.len();
        let mut out = CMatrix::zeros(kdim, kdim);

        // Build a full index from sub-indices over `keep` and `rest`.
        let compose = |a: usize, r: usize| -> usize {
            let mut idx = 0usize;
            for (pos, q) in keep.iter().enumerate() {
                let bit = (a >> (k - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            for (pos, q) in rest.iter().enumerate() {
                let bit = (r >> (rest.len() - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            idx
        };

        for a in 0..kdim {
            for b in 0..kdim {
                let mut sum = C64::ZERO;
                for r in 0..rdim {
                    sum += self.m[(compose(a, r), compose(b, r))];
                }
                out[(a, b)] = sum;
            }
        }
        DensityMatrix { n: k, m: out }
    }

    /// Fidelity against a pure target state: `F = ⟨ψ|ρ|ψ⟩`.
    pub fn fidelity_pure(&self, amps: &[C64]) -> f64 {
        assert_eq!(amps.len(), self.dim());
        let norm2: f64 = amps.iter().map(|a| a.abs2()).sum();
        let mut f = C64::ZERO;
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                f += amps[i].conj() * self.m[(i, j)] * amps[j];
            }
        }
        (f.re / norm2).clamp(0.0, 1.0)
    }

    /// Expectation value of a Hermitian operator over the full register.
    pub fn expectation(&self, op: &CMatrix) -> f64 {
        (&self.m * op).trace().re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn bell_phi_plus() -> DensityMatrix {
        DensityMatrix::pure(&[
            C64::real(FRAC_1_SQRT_2),
            C64::ZERO,
            C64::ZERO,
            C64::real(FRAC_1_SQRT_2),
        ])
    }

    #[test]
    fn pure_state_has_unit_purity() {
        let rho = DensityMatrix::basis(2, 3);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_purity() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pure_normalises_input() {
        let rho = DensityMatrix::pure(&[C64::real(3.0), C64::real(4.0)]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.prob_one(0) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut rho = DensityMatrix::basis(1, 0);
        rho.apply_unitary(&gates::h(), &[0]);
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_on_plus_gives_bell_pair() {
        let mut rho = DensityMatrix::basis(2, 0);
        rho.apply_unitary(&gates::h(), &[0]);
        rho.apply_unitary(&gates::cnot(), &[0, 1]);
        let f = rho.fidelity_pure(&[
            C64::real(FRAC_1_SQRT_2),
            C64::ZERO,
            C64::ZERO,
            C64::real(FRAC_1_SQRT_2),
        ]);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn embed_on_second_qubit() {
        // X on qubit 1 of |00> gives |01>.
        let mut rho = DensityMatrix::basis(2, 0);
        rho.apply_unitary(&gates::x(), &[1]);
        assert!(
            (rho.fidelity_pure(&[C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO]) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn embed_respects_target_order() {
        // CNOT with control qubit 1, target qubit 0 on |01> -> |11>.
        let mut rho = DensityMatrix::basis(2, 1);
        rho.apply_unitary(&gates::cnot(), &[1, 0]);
        assert!(
            (rho.fidelity_pure(&[C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE]) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn measurement_collapses() {
        let mut rho = DensityMatrix::basis(1, 0);
        rho.apply_unitary(&gates::h(), &[0]);
        let outcome = rho.measure_z(0, 0.75); // u=0.75 >= p1=0.5 -> outcome 0
        assert!(!outcome);
        assert!((rho.prob_one(0) - 0.0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_correlations_on_bell_pair() {
        // Measuring qubit 0 of |Φ+> then qubit 1 gives equal outcomes.
        for u in [0.1, 0.9] {
            let mut rho = bell_phi_plus();
            let m0 = rho.measure_z(0, u);
            let m1 = rho.measure_z(1, 0.5);
            assert_eq!(m0, m1);
        }
    }

    #[test]
    fn partial_trace_of_bell_pair_is_mixed() {
        let rho = bell_phi_plus();
        let one = rho.partial_trace_keep(&[0]);
        assert_eq!(one.num_qubits(), 1);
        assert!((one.purity() - 0.5).abs() < 1e-12);
        assert!((one.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_keep_order_swaps_qubits() {
        // |01⟩: keep [1,0] reverses to |10⟩.
        let rho = DensityMatrix::basis(2, 1);
        let swapped = rho.partial_trace_keep(&[1, 0]);
        assert!(
            (swapped.fidelity_pure(&[C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO]) - 1.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn tensor_then_trace_roundtrip() {
        let a = DensityMatrix::basis(1, 1);
        let b = DensityMatrix::maximally_mixed(1);
        let ab = a.tensor(&b);
        assert_eq!(ab.num_qubits(), 2);
        let a2 = ab.partial_trace_keep(&[0]);
        assert!(a2.matrix().approx_eq(a.matrix(), 1e-12));
        let b2 = ab.partial_trace_keep(&[1]);
        assert!(b2.matrix().approx_eq(b.matrix(), 1e-12));
    }

    #[test]
    fn fidelity_of_mixed_state() {
        let rho = DensityMatrix::maximally_mixed(2);
        let f = rho.fidelity_pure(&[
            C64::real(FRAC_1_SQRT_2),
            C64::ZERO,
            C64::ZERO,
            C64::real(FRAC_1_SQRT_2),
        ]);
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kraus_identity_channel_is_noop() {
        let mut rho = bell_phi_plus();
        let before = rho.clone();
        rho.apply_kraus(&[gates::identity()], &[0]);
        assert!(rho.matrix().approx_eq(before.matrix(), 1e-12));
    }

    #[test]
    #[should_panic]
    fn embed_rejects_duplicate_targets() {
        let rho = DensityMatrix::basis(2, 0);
        let _ = rho.embed(&gates::cnot(), &[0, 0]);
    }
}
