//! Seed sweeps: run one scenario per seed, in parallel, with results
//! ordered and bit-identical to the serial path.

use crate::pool::ThreadPool;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;

/// One experiment configuration, runnable at any seed.
///
/// Implementations must be pure in the seed: `run(seed)` may not read or
/// write state shared with other runs, so that a sweep's output is a
/// function of its seed list alone. Every closure `Fn(u64) -> P` gets a
/// blanket implementation.
pub trait Scenario: Send + Sync + 'static {
    /// The per-seed result ("one point of one curve of one figure").
    type Point: Send + 'static;

    /// Run the scenario at `seed`.
    fn run(&self, seed: u64) -> Self::Point;
}

impl<P, F> Scenario for F
where
    P: Send + 'static,
    F: Fn(u64) -> P + Send + Sync + 'static,
{
    type Point = P;

    fn run(&self, seed: u64) -> P {
        self(seed)
    }
}

/// The sweep thread count: `QNP_THREADS`, defaulting to the machine's
/// available parallelism (at least 1).
///
/// # Panics
///
/// If `QNP_THREADS` is set to zero or anything that is not a positive
/// integer. A typo'd knob silently degrading to the default is exactly
/// the kind of quiet misconfiguration the rest of the workspace refuses
/// (cf. `FaultPlan::validate`), so the sweep runner refuses too.
pub fn threads() -> usize {
    match std::env::var("QNP_THREADS") {
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!(
                "invalid QNP_THREADS={raw:?}: must be a positive integer \
                 (unset it to use the detected parallelism)"
            ),
        },
    }
}

/// Run `scenario` once per seed on [`threads()`] workers; results come
/// back in seed order. See [`run_sweep_with`].
pub fn run_sweep<S: Scenario>(scenario: S, seeds: &[u64]) -> Vec<S::Point> {
    run_sweep_with(threads(), scenario, seeds)
}

/// Run `scenario` once per seed on `threads` workers.
///
/// Guarantees, for any thread count (including 1, the serial fast
/// path):
///
/// * `result[i]` is `scenario.run(seeds[i])` — results are committed by
///   job index, never by completion order;
/// * the output is **bit-identical** to the serial loop, because each
///   run is a pure function of its seed;
/// * if any run panics, the panic of the **first failing seed** (in seed
///   order) is re-raised here after all runs finish, so failures are as
///   deterministic as successes.
pub fn run_sweep_with<S: Scenario>(threads: usize, scenario: S, seeds: &[u64]) -> Vec<S::Point> {
    if threads <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&seed| scenario.run(seed)).collect();
    }

    let scenario = Arc::new(scenario);
    let pool = ThreadPool::new(threads.min(seeds.len()));
    let (tx, rx) = mpsc::channel();
    for (idx, &seed) in seeds.iter().enumerate() {
        let scenario = Arc::clone(&scenario);
        let tx = tx.clone();
        pool.execute(move || {
            // Catch so one bad seed cannot starve the rest of the sweep
            // (and so the panic can be re-raised in deterministic order).
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| scenario.run(seed)));
            // The receiver only disappears if the submitting thread is
            // already unwinding; nothing left to report to.
            let _ = tx.send((idx, outcome));
        });
    }
    drop(tx);

    let mut slots: Vec<Option<std::thread::Result<S::Point>>> =
        (0..seeds.len()).map(|_| None).collect();
    for _ in 0..seeds.len() {
        let (idx, outcome) = rx
            .recv()
            .expect("qn-exec worker died without reporting a result");
        slots[idx] = Some(outcome);
    }
    pool.join();

    let mut points = Vec::with_capacity(seeds.len());
    for slot in slots {
        match slot.expect("every slot was filled above") {
            Ok(point) => points.push(point),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_seed_order() {
        // Make early seeds slow so completion order inverts seed order.
        let seeds: Vec<u64> = (0..16).collect();
        let out = run_sweep_with(
            4,
            |seed: u64| {
                std::thread::sleep(std::time::Duration::from_millis(16 - seed.min(15)));
                seed * 10
            },
            &seeds,
        );
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seeds: Vec<u64> = (0..40).collect();
        let f = |seed: u64| {
            // A deterministic but seed-sensitive computation.
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) ^ 0xdead_beef;
            for _ in 0..100 {
                x = x.rotate_left(17).wrapping_mul(0xc2b2ae3d27d4eb4f);
            }
            x
        };
        let serial = run_sweep_with(1, f, &seeds);
        for threads in [2, 3, 8] {
            assert_eq!(run_sweep_with(threads, f, &seeds), serial);
        }
    }

    #[test]
    fn first_failing_seed_panic_wins() {
        let seeds: Vec<u64> = (0..8).collect();
        let err = panic::catch_unwind(|| {
            run_sweep_with(
                4,
                |seed: u64| {
                    if seed >= 3 {
                        panic!("seed {seed} failed");
                    }
                    seed
                },
                &seeds,
            )
        })
        .expect_err("sweep must propagate the panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "seed 3 failed");
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let none: Vec<u64> = run_sweep_with(8, |s: u64| s, &[]);
        assert!(none.is_empty());
        assert_eq!(run_sweep_with(8, |s: u64| s + 1, &[41]), vec![42]);
    }
}
