//! The pending-event queue.
//!
//! A binary heap ordered by `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, which gives two guarantees
//! the protocols rely on:
//!
//! 1. **Determinism** — ties in simulated time are broken by insertion
//!    order, never by allocation addresses or hash ordering.
//! 2. **FIFO at equal times** — events scheduled earlier fire earlier,
//!    matching the intuition of a causal message sequence.
//!
//! Cancellation is lazy: the id is removed from the pending set and the
//! heap entry is dropped when it surfaces. This keeps `cancel` O(1) without
//! intrusive heap surgery.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events that are scheduled and not yet popped or
    /// cancelled. An entry surfacing from the heap whose seq is absent here
    /// has been cancelled and is silently dropped.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`. Returns an id that can be
    /// passed to [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.time, entry.event));
            }
        }
        None
    }

    /// Time of the earliest pending event, if any. Cancelled entries at the
    /// front are discarded as a side effect.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a), "cancelling a popped event must not succeed");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
