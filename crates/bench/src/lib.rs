//! # qn-bench — benchmark harnesses reproducing the paper's evaluation
//!
//! One `cargo bench` target per table/figure of the paper (all
//! `harness = false`, printing the same rows/series the paper plots),
//! plus Criterion micro-benchmarks of the core data structures.
//!
//! The scenario functions live here so the bench targets, integration
//! tests and examples share one implementation.
//!
//! Environment knobs (documented in EXPERIMENTS.md):
//!
//! * `QNP_RUNS` — number of seeds averaged per configuration (default
//!   varies per figure; the paper uses 100);
//! * `QNP_PAIRS` — pairs per request for Fig 8 (paper: 100).

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, CircuitId, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_routing::{dumbbell, CircuitPlan, CutoffPolicy, Dumbbell};
use qn_sim::{NodeId, SimDuration, SimTime};

/// Read an env-var knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `QNP_RUNS` (seeds per configuration).
pub fn runs(default: u64) -> u64 {
    env_u64("QNP_RUNS", default)
}

/// `QNP_PAIRS` (pairs per request for Fig 8).
pub fn pairs(default: u64) -> u64 {
    env_u64("QNP_PAIRS", default)
}

/// A KEEP request for `n` pairs without deadline.
pub fn keep_request(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// The circuit sets of the Fig 8 panels: 1, 2 or 4 circuits over the
/// dumbbell, all sharing the MA–MB bottleneck.
pub fn circuit_pairs(d: &Dumbbell, n_circuits: usize) -> Vec<(NodeId, NodeId)> {
    match n_circuits {
        1 => vec![(d.a0, d.b0)],
        2 => vec![(d.a0, d.b0), (d.a1, d.b1)],
        4 => vec![(d.a0, d.b0), (d.a1, d.b1), (d.a0, d.b1), (d.a1, d.b0)],
        _ => panic!("Fig 8 uses 1, 2 or 4 circuits"),
    }
}

/// Result of one Fig 8 configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    /// Mean latency of the completed A0-B0 requests, seconds.
    pub mean_latency: f64,
    /// Completed A0-B0 requests.
    pub completed: usize,
    /// A0-B0 requests issued.
    pub issued: usize,
}

/// Fig 8: `n_requests` simultaneous requests for `n_pairs` each, spread
/// round-robin over `n_circuits` circuits; returns the A0-B0 request
/// latency statistics.
pub fn fig8_scenario(
    seed: u64,
    n_circuits: usize,
    n_requests: usize,
    n_pairs: u64,
    fidelity: f64,
    cutoff: CutoffPolicy,
    horizon: SimDuration,
) -> Fig8Point {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let pairs = circuit_pairs(&d, n_circuits);
    let vcs: Vec<CircuitId> = pairs
        .iter()
        .map(|(h, t)| {
            sim.open_circuit(*h, *t, fidelity, cutoff)
                .expect("circuit plan must be feasible")
        })
        .collect();
    // Requests distributed round-robin (paper: "the circuit A0-B0 handles
    // the 1st and 5th requests …").
    let mut a0b0_requests = Vec::new();
    for i in 0..n_requests {
        let vc_idx = i % vcs.len();
        let (h, t) = pairs[vc_idx];
        let req = keep_request(i as u64 + 1, h, t, fidelity, n_pairs);
        if vc_idx == 0 {
            a0b0_requests.push(req.id);
        }
        sim.submit_at(SimTime::ZERO, vcs[vc_idx], req);
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    let latencies: Vec<f64> = a0b0_requests
        .iter()
        .filter_map(|r| app.request_latency(vcs[0], *r))
        .map(|l| l.as_secs_f64())
        .collect();
    Fig8Point {
        mean_latency: if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        completed: latencies.len(),
        issued: a0b0_requests.len(),
    }
}

/// Result of one Fig 9 configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Point {
    /// A0-B0 circuit throughput in the measurement window, pairs/s.
    pub throughput: f64,
    /// Mean latency of measured requests, seconds.
    pub mean_latency: f64,
    /// 5th percentile latency, seconds.
    pub p5: f64,
    /// 95th percentile latency, seconds.
    pub p95: f64,
    /// Requests measured.
    pub measured: usize,
}

/// Fig 9: 3-pair requests at fixed intervals on A0-B0, with the network
/// otherwise empty or congested by a long-running A1-B1 flow. Latency is
/// measured for requests issued after the 40 s mark; throughput over the
/// same window.
pub fn fig9_scenario(seed: u64, congested: bool, interval: SimDuration) -> Fig9Point {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let fidelity = 0.9;
    let vc = sim
        .open_circuit(d.a0, d.b0, fidelity, CutoffPolicy::short())
        .expect("plan");
    if congested {
        let vc2 = sim
            .open_circuit(d.a1, d.b1, fidelity, CutoffPolicy::short())
            .expect("plan");
        sim.submit_at(
            SimTime::ZERO,
            vc2,
            keep_request(1_000_000, d.a1, d.b1, fidelity, u64::MAX / 2),
        );
    }
    let warmup = SimTime::ZERO + SimDuration::from_secs(40);
    let end = SimTime::ZERO + SimDuration::from_secs(50);
    let mut t = SimTime::ZERO;
    let mut id = 1u64;
    let mut measured_ids = Vec::new();
    while t < end {
        let req = keep_request(id, d.a0, d.b0, fidelity, 3);
        if t >= warmup {
            measured_ids.push(req.id);
        }
        sim.submit_at(t, vc, req);
        id += 1;
        t += interval;
    }
    sim.run_until(end + SimDuration::from_secs(10));
    let app = sim.app();
    let mut lats: Vec<f64> = measured_ids
        .iter()
        .filter_map(|r| app.request_latency(vc, *r))
        .map(|l| l.as_secs_f64())
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let thr = app.confirmed_deliveries(vc, d.a0, warmup, end) as f64 / 10.0;
    let pct = |q: f64| -> f64 {
        if lats.is_empty() {
            f64::NAN
        } else {
            lats[((q * (lats.len() - 1) as f64).round() as usize).min(lats.len() - 1)]
        }
    };
    Fig9Point {
        throughput: thr,
        mean_latency: if lats.is_empty() {
            f64::NAN
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        },
        p5: pct(0.05),
        p95: pct(0.95),
        measured: lats.len(),
    }
}

/// Which Fig 10 protocol variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig10Variant {
    /// The QNP with its cutoff mechanism.
    Cutoff,
    /// The "simpler protocol": no cutoffs in the network; end-to-end
    /// pairs below the fidelity threshold are discarded using the
    /// simulation oracle (physically impossible outside a simulator).
    OracleBaseline,
}

/// Result of one Fig 10a,b configuration: per-circuit throughput.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Point {
    /// Throughput of the F=0.9 circuit (pairs/s counted at the head).
    pub thr_f09: f64,
    /// Throughput of the F=0.8 circuit.
    pub thr_f08: f64,
}

/// Fig 10a,b: two circuits (A0-B0 at F=0.9, A1-B1 at F=0.8) with
/// long-running requests sharing the bottleneck; run 20 s of simulated
/// time at the given memory lifetime and report throughput.
///
/// For the cutoff variant every confirmed delivery counts (the cutoff is
/// the fidelity guarantee); the oracle baseline counts only deliveries
/// whose true fidelity clears the circuit threshold.
pub fn fig10ab_scenario(seed: u64, t2: f64, variant: Fig10Variant) -> Fig10Point {
    let params = HardwareParams::simulation().with_electron_t2(t2);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut builder = NetworkBuilder::new(topology).seed(seed);
    if variant == Fig10Variant::OracleBaseline {
        builder = builder.disable_cutoff();
    }
    let mut sim = builder.build();
    let horizon = SimDuration::from_secs(20);
    let mut thr = [0.0f64; 2];
    let configs = [(d.a0, d.b0, 0.9), (d.a1, d.b1, 0.8)];
    let mut vcs = Vec::new();
    for (i, (h, t, f)) in configs.iter().enumerate() {
        match sim.open_circuit(*h, *t, *f, CutoffPolicy::long()) {
            Ok(vc) => {
                sim.submit_at(
                    SimTime::ZERO,
                    vc,
                    keep_request(i as u64 + 1, *h, *t, *f, u64::MAX / 2),
                );
                vcs.push(Some(vc));
            }
            Err(_) => vcs.push(None), // unattainable at this T2: zero throughput
        }
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    for (i, (_, _, f)) in configs.iter().enumerate() {
        if let Some(vc) = vcs[i] {
            let head = configs[i].0;
            let count = match variant {
                Fig10Variant::Cutoff => {
                    app.confirmed_deliveries(vc, head, SimTime::ZERO, SimTime::MAX)
                }
                Fig10Variant::OracleBaseline => {
                    app.good_deliveries(vc, head, *f, SimTime::ZERO, SimTime::MAX)
                }
            };
            thr[i] = count as f64 / horizon.as_secs_f64();
        }
    }
    Fig10Point {
        thr_f09: thr[0],
        thr_f08: thr[1],
    }
}

/// Result of one Fig 10c configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig10cPoint {
    /// Raw delivered throughput of the two circuits (F=0.9, F=0.8).
    pub raw: [f64; 2],
    /// Above-threshold ("useful") throughput of the two circuits.
    pub good: [f64; 2],
    /// The cutoff the routing assigned (the dashed line of Fig 10c).
    pub cutoff_s: f64,
}

/// Fig 10c: throughput vs injected classical message delay at
/// T2* ≈ 1.6 s.
pub fn fig10c_scenario(seed: u64, extra_delay: SimDuration) -> Fig10cPoint {
    let params = HardwareParams::simulation().with_electron_t2(1.6);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(seed)
        .extra_message_delay(extra_delay)
        .build();
    let horizon = SimDuration::from_secs(20);
    let configs = [(d.a0, d.b0, 0.9), (d.a1, d.b1, 0.8)];
    let mut raw = [0.0; 2];
    let mut good = [0.0; 2];
    let mut cutoff_s = f64::NAN;
    for (i, (h, t, f)) in configs.iter().enumerate() {
        if let Ok(vc) = sim.open_circuit(*h, *t, *f, CutoffPolicy::long()) {
            cutoff_s = sim
                .installed(vc)
                .map(|inst| inst.plan.cutoff.as_secs_f64())
                .unwrap_or(f64::NAN);
            sim.submit_at(
                SimTime::ZERO,
                vc,
                keep_request(i as u64 + 1, *h, *t, *f, u64::MAX / 2),
            );
        }
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    for (i, (h, _, f)) in configs.iter().enumerate() {
        let vc = CircuitId(i as u64 + 1);
        raw[i] = app.confirmed_deliveries(vc, *h, SimTime::ZERO, SimTime::MAX) as f64
            / horizon.as_secs_f64();
        good[i] = app.good_deliveries(vc, *h, *f, SimTime::ZERO, SimTime::MAX) as f64
            / horizon.as_secs_f64();
    }
    Fig10cPoint {
        raw,
        good,
        cutoff_s,
    }
}

/// The hand-tuned Fig 11 circuit plan (paper §5.3: manual routing tables,
/// link fidelities "as high as possible", hand-tuned cutoff).
pub fn fig11_plan() -> CircuitPlan {
    CircuitPlan {
        path: vec![NodeId(0), NodeId(1), NodeId(2)],
        e2e_fidelity: 0.5,
        link_fidelity: 0.82,
        alpha: 0.1, // informational; the link layer solves α itself
        cutoff: SimDuration::from_millis(1500),
        max_lpr: 5.0,
        max_eer: 1.0,
    }
}

/// Fig 11: `n_pairs` pairs of fidelity 0.5 over a 3-node, 2 × 25 km
/// chain on near-term hardware. Returns `(arrival_times_s,
/// mean_fidelity)`.
pub fn fig11_scenario(seed: u64, n_pairs: u64) -> (Vec<f64>, f64) {
    let topology = qn_routing::chain(
        3,
        HardwareParams::near_term(),
        FibreParams::telecom(25_000.0),
    );
    let mut sim = NetworkBuilder::new(topology)
        .seed(seed)
        .near_term(2)
        .build();
    let vc = sim.install_plan(fig11_plan());
    sim.submit_at(
        SimTime::ZERO,
        vc,
        keep_request(1, NodeId(0), NodeId(2), 0.5, n_pairs),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
    let app = sim.app();
    let times: Vec<f64> = app
        .delivery_times(vc, NodeId(0))
        .iter()
        .map(|t| t.as_secs_f64())
        .collect();
    let fidelity = app.mean_fidelity(vc, NodeId(0)).unwrap_or(f64::NAN);
    (times, fidelity)
}

/// Convenience: a built dumbbell simulation (used by the micro-benches).
pub fn quick_dumbbell(seed: u64) -> (NetSim, Dumbbell) {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    (NetworkBuilder::new(topology).seed(seed).build(), d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_single_circuit_single_request_completes() {
        let p = fig8_scenario(
            1,
            1,
            1,
            5,
            0.8,
            CutoffPolicy::short(),
            SimDuration::from_secs(60),
        );
        assert_eq!(p.completed, 1);
        assert!(p.mean_latency > 0.0 && p.mean_latency < 60.0);
    }

    #[test]
    fn fig10_point_produces_throughput() {
        let p = fig10ab_scenario(1, 60.0, Fig10Variant::Cutoff);
        assert!(p.thr_f09 > 0.0);
        assert!(p.thr_f08 > p.thr_f09, "lower fidelity circuit is faster");
    }

    #[test]
    fn env_knobs_parse() {
        assert_eq!(env_u64("QNP_NOT_SET_EVER", 7), 7);
    }
}
