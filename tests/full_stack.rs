//! Cross-crate integration tests through the root `qnp` facade:
//! routing → signalling → QNP → link layer → hardware → events,
//! exercising the paper's headline claims end to end.

use qnp::prelude::*;
use qnp::routing::chain;

fn request(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// The paper's core promise: the delivered end-to-end fidelity respects
/// the application's threshold, because the routing budget plans for the
/// worst case. Checked across seeds and two target fidelities.
#[test]
fn fidelity_threshold_respected_across_seeds() {
    for fidelity in [0.8, 0.9] {
        let mut all = Vec::new();
        for seed in 0..4u64 {
            let (topology, d) =
                qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
            let mut sim = NetworkBuilder::new(topology).seed(seed).build();
            let vc = sim
                .open_circuit(d.a0, d.b0, fidelity, CutoffPolicy::short())
                .unwrap();
            sim.submit_at(SimTime::ZERO, vc, request(1, d.a0, d.b0, fidelity, 5));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            for rec in &sim.app().deliveries {
                if let Some(f) = rec.oracle_fidelity {
                    all.push(f);
                }
            }
        }
        assert!(!all.is_empty());
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!(
            mean >= fidelity - 0.03,
            "target {fidelity}: mean delivered {mean}"
        );
    }
}

/// Longer circuits work and cost more time per pair (more links, more
/// swaps, tighter budgets).
#[test]
fn latency_grows_with_chain_length() {
    let mut latencies = Vec::new();
    for n_nodes in [2usize, 3, 4] {
        let topology = chain(n_nodes, HardwareParams::simulation(), FibreParams::lab_2m());
        let tail = NodeId(n_nodes as u32 - 1);
        let mut sim = NetworkBuilder::new(topology).seed(17).build();
        let vc = sim
            .open_circuit(NodeId(0), tail, 0.8, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, request(1, NodeId(0), tail, 0.8, 10));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));
        let lat = sim
            .app()
            .request_latency(vc, RequestId(1))
            .expect("completes")
            .as_secs_f64();
        latencies.push(lat);
    }
    assert!(
        latencies[2] > latencies[0],
        "4-node chain should be slower than direct link: {latencies:?}"
    );
}

/// Cutoff ablation (Fig 10 in miniature): with short memories, the
/// cutoff protocol delivers higher-fidelity pairs than running without
/// cutoffs.
#[test]
fn cutoff_ablation_improves_fidelity_under_decoherence() {
    let t2 = 0.8;
    let run = |with_cutoff: bool| -> f64 {
        let params = HardwareParams::simulation().with_electron_t2(t2);
        let (topology, d) = qnp::routing::dumbbell(params, FibreParams::lab_2m());
        let mut builder = NetworkBuilder::new(topology).seed(23);
        if !with_cutoff {
            builder = builder.disable_cutoff();
        }
        let mut sim = builder.build();
        let vc = sim
            .open_circuit(d.a0, d.b0, 0.8, CutoffPolicy::long())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, request(1, d.a0, d.b0, 0.8, 30));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
        sim.app().mean_fidelity(vc, d.a0).unwrap_or(0.0)
    };
    let with_cutoff = run(true);
    let without = run(false);
    assert!(
        with_cutoff > without,
        "cutoff should protect fidelity: {with_cutoff:.3} vs {without:.3}"
    );
}

/// The end-to-end pair identifier is identical at both ends for every
/// confirmed chain — the paper's §3.2 delivery contract.
#[test]
fn chain_identifiers_match_at_both_ends() {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(31).build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, request(1, d.a0, d.b0, 0.85, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    let head_ids: Vec<_> = app
        .deliveries
        .iter()
        .filter(|r| r.node == d.a0)
        .filter_map(|r| r.chain)
        .collect();
    let tail_ids: Vec<_> = app
        .deliveries
        .iter()
        .filter(|r| r.node == d.b0)
        .filter_map(|r| r.chain)
        .collect();
    assert_eq!(head_ids.len(), 6);
    assert_eq!(tail_ids.len(), 6);
    for id in &head_ids {
        assert!(
            tail_ids.contains(id),
            "chain id {id:?} delivered at head but not tail"
        );
    }
}

/// Bell-state bookkeeping: both ends always report the same Bell state
/// for the same chain (the lazy-tracking correctness claim).
#[test]
fn both_ends_agree_on_bell_states() {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(37).build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, request(1, d.a0, d.b0, 0.85, 8));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    for head_rec in app.deliveries.iter().filter(|r| r.node == d.a0) {
        let tail_rec = app
            .deliveries
            .iter()
            .find(|r| r.node == d.b0 && r.chain == head_rec.chain)
            .expect("matching tail delivery");
        let state_of = |p: &qnp::netsim::Payload| match p {
            qnp::netsim::Payload::Qubit { state } => *state,
            other => panic!("unexpected payload {other:?}"),
        };
        assert_eq!(
            state_of(&head_rec.payload),
            state_of(&tail_rec.payload),
            "ends disagree on the delivered Bell state"
        );
    }
}

/// Mixed workload: KEEP + MEASURE + EARLY requests aggregated on one
/// circuit all complete and deliver the right payload kinds.
#[test]
fn mixed_request_types_coexist() {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(41).build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, request(1, d.a0, d.b0, 0.85, 4));
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            request_type: RequestType::Measure(Pauli::Z),
            ..request(2, d.a0, d.b0, 0.85, 4)
        },
    );
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            request_type: RequestType::Early,
            ..request(3, d.a0, d.b0, 0.85, 4)
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));
    let app = sim.app();
    for id in 1..=3u64 {
        assert!(
            app.completed.contains_key(&(vc, RequestId(id))),
            "request {id} incomplete"
        );
    }
    let kinds: Vec<_> = app
        .deliveries
        .iter()
        .filter(|r| r.node == d.a0)
        .map(|r| std::mem::discriminant(&r.payload))
        .collect();
    let distinct: std::collections::HashSet<_> = kinds.into_iter().collect();
    assert!(
        distinct.len() >= 3,
        "expected qubit, measurement and early payloads"
    );
}
