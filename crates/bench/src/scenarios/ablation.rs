//! Ablation scenarios: chain-length scaling and the cutoff sweep.
//!
//! Bodies hoisted out of `benches/ablation_chain_length.rs` and
//! `benches/ablation_cutoff.rs` so the seed loops can run through the
//! `qn_exec` sweep runner.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::build::NetworkBuilder;
use qn_routing::{chain, dumbbell, CircuitPlan};
use qn_sim::{NodeId, SimDuration, SimTime};

/// Result of one chain-length configuration at one seed.
#[derive(Clone, Copy, Debug)]
pub struct ChainPoint {
    /// Seconds per delivered pair (NaN if the request never completed).
    pub per_pair_latency: f64,
    /// Mean delivered fidelity (NaN if nothing was delivered).
    pub mean_fidelity: f64,
}

/// One run of the chain-length ablation: `n_pairs` pairs over an
/// `n_nodes` chain with the given pre-computed plan.
pub fn chain_point_scenario(
    seed: u64,
    n_nodes: usize,
    plan: &CircuitPlan,
    fidelity: f64,
    n_pairs: u64,
    horizon: SimDuration,
) -> ChainPoint {
    let topology = chain(n_nodes, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let tail = NodeId(n_nodes as u32 - 1);
    let vc = sim.install_plan(plan.clone());
    sim.submit_at(
        SimTime::ZERO,
        vc,
        keep_request(1, NodeId(0), tail, fidelity, n_pairs),
    );
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    ChainPoint {
        per_pair_latency: app
            .request_latency(vc, qn_net::RequestId(1))
            .map(|l| l.as_secs_f64() / n_pairs as f64)
            .unwrap_or(f64::NAN),
        mean_fidelity: app.mean_fidelity(vc, NodeId(0)).unwrap_or(f64::NAN),
    }
}

/// Result of one cutoff-sweep configuration at one seed.
#[derive(Clone, Copy, Debug)]
pub struct CutoffPoint {
    /// Confirmed deliveries per second over the horizon.
    pub throughput: f64,
    /// Mean delivered fidelity (NaN if nothing was delivered).
    pub mean_fidelity: f64,
    /// Pairs released unused (cutoff discards, cross-check failures…).
    pub discards: u64,
}

/// One run of the cutoff ablation: a long-running request over the
/// dumbbell at T2* = `t2`, with the plan's cutoff overridden.
pub fn cutoff_point_scenario(
    seed: u64,
    t2: f64,
    plan: &CircuitPlan,
    horizon: SimDuration,
) -> CutoffPoint {
    let (topology, d) = dumbbell(
        HardwareParams::simulation().with_electron_t2(t2),
        FibreParams::lab_2m(),
    );
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let fidelity = plan.e2e_fidelity;
    let vc = sim.install_plan(plan.clone());
    sim.submit_at(
        SimTime::ZERO,
        vc,
        keep_request(1, d.a0, d.b0, fidelity, u64::MAX / 2),
    );
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    CutoffPoint {
        throughput: app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX) as f64
            / horizon.as_secs_f64(),
        mean_fidelity: app.mean_fidelity(vc, d.a0).unwrap_or(f64::NAN),
        discards: sim.discarded_pairs(),
    }
}
