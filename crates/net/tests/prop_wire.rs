//! Codec fuzz suites: the wire format must round-trip every message
//! exactly, and decoding must be *total* — arbitrary, truncated or
//! bit-flipped byte strings produce typed errors, never panics. Failing
//! inputs shrink to minimal byte vectors / messages.

use proptest::collection::vec;
use proptest::prelude::*;
use qn_link::{EntanglementId, LinkEvent, LinkLabel, LinkPair, RejectReason};
use qn_net::ids::{CircuitId, Epoch, RequestId};
use qn_net::messages::{Complete, Expire, Forward, Message, Track, TrackAck};
use qn_net::request::RequestType;
use qn_net::wire::{decode_link_event, encode_link_event, DecodeError, MessageView, WIRE_VERSION};
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_sim::NodeId;

fn arb_bell() -> BoxedStrategy<BellState> {
    (any::<bool>(), any::<bool>())
        .prop_map(|(x, z)| BellState::from_bits(x, z))
        .boxed()
}

fn arb_pauli() -> BoxedStrategy<Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
    .boxed()
}

fn arb_corr() -> BoxedStrategy<EntanglementId> {
    (any::<u32>(), any::<u32>(), any::<u64>())
        .prop_map(|(a, b, seq)| EntanglementId {
            node_a: NodeId(a),
            node_b: NodeId(b),
            seq,
        })
        .boxed()
}

fn arb_request_type() -> BoxedStrategy<RequestType> {
    prop_oneof![
        Just(RequestType::Keep),
        Just(RequestType::Early),
        arb_pauli().prop_map(RequestType::Measure)
    ]
    .boxed()
}

/// Any bit pattern, including NaNs, infinities and signed zeros: the
/// codec must preserve all of them bit-exactly.
fn arb_f64_bits() -> BoxedStrategy<f64> {
    any::<u64>().prop_map(f64::from_bits).boxed()
}

fn arb_forward() -> BoxedStrategy<Message> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()),
        arb_request_type(),
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        prop_oneof![Just(None), arb_bell().prop_map(Some)],
        arb_f64_bits(),
    )
        .prop_map(|((c, r, h, t), rt, n, fs, rate)| {
            Message::Forward(Forward {
                circuit: CircuitId(c),
                request: RequestId(r),
                head_identifier: h,
                tail_identifier: t,
                request_type: rt,
                number_of_pairs: n,
                final_state: fs,
                rate,
            })
        })
        .boxed()
}

fn arb_complete() -> BoxedStrategy<Message> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        arb_f64_bits(),
    )
        .prop_map(|(c, r, h, t, rate)| {
            Message::Complete(Complete {
                circuit: CircuitId(c),
                request: RequestId(r),
                head_identifier: h,
                tail_identifier: t,
                rate,
            })
        })
        .boxed()
}

fn arb_track() -> BoxedStrategy<Message> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()),
        arb_corr(),
        arb_corr(),
        arb_bell(),
        prop_oneof![Just(None), any::<u64>().prop_map(|e| Some(Epoch(e)))],
    )
        .prop_map(|((c, r, h, t), origin, link, state, epoch)| {
            Message::Track(Track {
                circuit: CircuitId(c),
                request: RequestId(r),
                head_identifier: h,
                tail_identifier: t,
                origin,
                link,
                outcome_state: state,
                epoch,
            })
        })
        .boxed()
}

fn arb_expire() -> BoxedStrategy<Message> {
    (any::<u64>(), arb_corr())
        .prop_map(|(c, origin)| {
            Message::Expire(Expire {
                circuit: CircuitId(c),
                origin,
            })
        })
        .boxed()
}

fn arb_track_ack() -> BoxedStrategy<Message> {
    (any::<u64>(), arb_corr())
        .prop_map(|(c, origin)| {
            Message::TrackAck(TrackAck {
                circuit: CircuitId(c),
                origin,
            })
        })
        .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        arb_forward(),
        arb_complete(),
        arb_track(),
        arb_expire(),
        arb_track_ack()
    ]
    .boxed()
}

fn arb_link_event() -> BoxedStrategy<LinkEvent> {
    prop_oneof![
        (
            arb_corr(),
            any::<u32>(),
            arb_bell(),
            (arb_f64_bits(), arb_f64_bits()),
            any::<u64>(),
        )
            .prop_map(|(id, label, announced, (alpha, goodness), attempts)| {
                LinkEvent::PairReady(LinkPair {
                    id,
                    label: LinkLabel(label),
                    announced,
                    alpha,
                    goodness,
                    attempts,
                })
            }),
        any::<u32>().prop_map(|l| LinkEvent::RequestDone(LinkLabel(l))),
        (
            any::<u32>(),
            prop_oneof![
                Just(RejectReason::FidelityUnattainable),
                Just(RejectReason::DuplicateLabel),
                Just(RejectReason::InvalidWeight),
                Just(RejectReason::LinkDown)
            ]
        )
            .prop_map(|(l, r)| LinkEvent::Rejected(LinkLabel(l), r)),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exact round-trip for every message type over the full value
    /// space, including NaN rates (compared by re-encoding: the byte
    /// representation is the identity that matters on the wire).
    #[test]
    fn message_encode_decode_round_trip(msg in arb_message()) {
        let bytes = msg.wire_bytes();
        let back = Message::decode(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let back = back.unwrap();
        prop_assert_eq!(back.wire_bytes(), bytes);
        // For non-NaN payloads structural equality must hold too.
        let nan_rate = match &msg {
            Message::Forward(f) => f.rate.is_nan(),
            Message::Complete(c) => c.rate.is_nan(),
            _ => false,
        };
        if !nan_rate {
            prop_assert_eq!(back, msg);
        }
    }

    /// Decoding is total on arbitrary byte strings: typed error or valid
    /// message, never a panic. A panicking input shrinks to a minimal
    /// byte vector.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..128)) {
        match Message::decode(&bytes) {
            Ok(msg) => {
                // Whatever decoded must re-encode to the same bytes
                // (the codec is a bijection on its valid range).
                prop_assert_eq!(msg.wire_bytes(), bytes);
            }
            Err(e) => {
                // Errors are typed and displayable.
                let _ = format!("{e}");
            }
        }
        let _ = decode_link_event(&bytes);
    }

    /// Every strict prefix of a valid frame fails with `Truncated`.
    #[test]
    fn truncated_frames_error(msg in arb_message(), cut in any::<u16>()) {
        let bytes = msg.wire_bytes();
        let len = (cut as usize) % bytes.len();
        let err = Message::decode(&bytes[..len]).unwrap_err();
        prop_assert!(
            matches!(err, DecodeError::Truncated { .. }),
            "prefix {} of {} gave {:?}", len, bytes.len(), err
        );
    }

    /// A single flipped bit never panics the decoder; it either yields a
    /// typed error or a different-but-valid frame that re-encodes
    /// consistently.
    #[test]
    fn bit_flips_are_absorbed(msg in arb_message(), flip in any::<u32>()) {
        let mut bytes = msg.wire_bytes();
        let bit = (flip as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match Message::decode(&bytes) {
            Ok(m) => prop_assert_eq!(m.wire_bytes(), bytes),
            Err(e) => {
                if bit / 8 == 0 {
                    // Version byte flipped: the error must say so.
                    prop_assert_eq!(e, DecodeError::BadVersion(WIRE_VERSION ^ (1 << (bit % 8))));
                }
            }
        }
    }

    /// Link-layer lifecycle frames round-trip exactly and share the
    /// kind-byte registry (a link frame never decodes as a QNP message).
    #[test]
    fn link_event_round_trip_and_plane_separation(ev in arb_link_event()) {
        let mut bytes = Vec::new();
        encode_link_event(&ev, &mut bytes);
        let back = decode_link_event(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let mut again = Vec::new();
        encode_link_event(&back.unwrap(), &mut again);
        prop_assert_eq!(again, bytes.clone());
        prop_assert!(matches!(
            Message::decode(&bytes),
            Err(DecodeError::UnknownKind(_))
        ));
    }

    /// Appending any extra bytes to a valid frame is rejected as
    /// trailing garbage.
    #[test]
    fn trailing_bytes_rejected(msg in arb_message(), extra in vec(any::<u8>(), 1..16)) {
        let mut bytes = msg.wire_bytes();
        let n = extra.len();
        bytes.extend_from_slice(&extra);
        prop_assert_eq!(
            Message::decode(&bytes),
            Err(DecodeError::TrailingBytes { extra: n })
        );
    }

    /// The zero-copy view is byte-for-byte equivalent to the owned
    /// decode on valid frames: same message, same demux key, and every
    /// field accessor agrees with the materialised struct.
    #[test]
    fn view_decode_equivalent_on_valid_frames(msg in arb_message()) {
        let bytes = msg.wire_bytes();
        let view = MessageView::parse(&bytes);
        prop_assert!(view.is_ok(), "view parse failed: {:?}", view.err());
        let view = view.unwrap();
        // Re-encode comparison covers NaN rate bit patterns.
        prop_assert_eq!(view.to_message().wire_bytes(), bytes.clone());
        prop_assert_eq!(view.circuit(), msg.circuit());
        match (&view, &msg) {
            (MessageView::Forward(v), Message::Forward(m)) => {
                prop_assert_eq!(v.request(), m.request);
                prop_assert_eq!(v.request_type(), m.request_type);
                prop_assert_eq!(v.number_of_pairs(), m.number_of_pairs);
                prop_assert_eq!(v.final_state(), m.final_state);
                prop_assert_eq!(v.rate().to_bits(), m.rate.to_bits());
            }
            (MessageView::Complete(v), Message::Complete(m)) => {
                prop_assert_eq!(v.rate().to_bits(), m.rate.to_bits());
                prop_assert_eq!((v.head_identifier(), v.tail_identifier()),
                    (m.head_identifier, m.tail_identifier));
            }
            (MessageView::Track(v), Message::Track(m)) => {
                prop_assert_eq!(v.origin(), m.origin);
                prop_assert_eq!(v.link(), m.link);
                prop_assert_eq!(v.outcome_state(), m.outcome_state);
                prop_assert_eq!(v.epoch(), m.epoch);
            }
            (MessageView::Expire(v), Message::Expire(m)) => {
                prop_assert_eq!(v.origin(), m.origin);
            }
            (MessageView::TrackAck(v), Message::TrackAck(m)) => {
                prop_assert_eq!(v.origin(), m.origin);
            }
            (v, m) => prop_assert!(false, "kind mismatch: {:?} vs {:?}", v, m),
        }
    }

    /// On *arbitrary* bytes the two decode paths agree exactly: both
    /// succeed with the same frame, or both fail with the **same**
    /// `DecodeError` (same variant, same truncation offset).
    #[test]
    fn view_decode_equivalent_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..128)) {
        match (MessageView::parse(&bytes), Message::decode(&bytes)) {
            (Ok(v), Ok(m)) => prop_assert_eq!(v.to_message().wire_bytes(), m.wire_bytes()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "paths diverge: {:?} vs {:?}", a, b),
        }
    }

    /// Truncated and bit-flipped valid frames: same equivalence, byte
    /// offset included.
    #[test]
    fn view_decode_equivalent_on_damaged_frames(
        msg in arb_message(),
        cut in any::<u16>(),
        flip in any::<u32>(),
    ) {
        let bytes = msg.wire_bytes();
        let len = (cut as usize) % bytes.len();
        prop_assert_eq!(
            MessageView::parse(&bytes[..len]).unwrap_err(),
            Message::decode(&bytes[..len]).unwrap_err()
        );
        let mut flipped = bytes;
        let bit = (flip as usize) % (flipped.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        match (MessageView::parse(&flipped), Message::decode(&flipped)) {
            (Ok(v), Ok(m)) => prop_assert_eq!(v.to_message().wire_bytes(), m.wire_bytes()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "paths diverge: {:?} vs {:?}", a, b),
        }
    }
}
