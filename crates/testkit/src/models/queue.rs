//! Reference model of the simulator's pending-event queue.
//!
//! `qn_sim::EventQueue` is a binary heap with lazy cancellation; the
//! protocols rely on two behavioural guarantees — global `(time,
//! insertion)` ordering and O(1) cancellation that affects exactly one
//! event. The model below is the obviously-correct version: a flat list
//! scanned linearly for the minimum. Every observable (popped values,
//! peeked times, cancellation results, lengths) must agree exactly.

use crate::ModelSpec;
use proptest::prelude::*;
use qn_sim::{EventId, EventQueue, SimTime};

/// One operation of the queue interface. `Push` payloads are the
/// model-assigned insertion index, so popped events are fully
/// identified. Times are drawn from a tiny range to force plenty of
/// equal-time ties (the FIFO case that heap implementations get wrong).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueOp {
    /// Schedule an event at `time_ps`.
    Push { time_ps: u64 },
    /// Cancel the `slot % issued`-th event ever issued (live or not).
    Cancel { slot: usize },
    /// Pop the earliest event and compare it.
    Pop,
    /// Compare the earliest pending time.
    Peek,
}

/// The reference: a flat list of live `(time, insertion index)` entries.
#[derive(Default)]
pub struct QueueModel {
    /// Live events.
    live: Vec<(u64, u64)>,
    /// Liveness of every event ever issued, by insertion index.
    issued: Vec<bool>,
}

impl QueueModel {
    fn min_entry(&self) -> Option<(u64, u64)> {
        self.live.iter().copied().min()
    }
}

/// The system under test plus the ids it handed out.
pub struct QueueSystem {
    queue: EventQueue<u64>,
    ids: Vec<EventId>,
}

/// [`ModelSpec`] for the event queue.
pub struct QueueSpec;

impl ModelSpec for QueueSpec {
    type Op = QueueOp;
    type Model = QueueModel;
    type System = QueueSystem;

    fn new_model(&self) -> QueueModel {
        QueueModel::default()
    }

    fn new_system(&self) -> QueueSystem {
        QueueSystem {
            queue: EventQueue::new(),
            ids: Vec::new(),
        }
    }

    fn op_strategy(&self) -> BoxedStrategy<QueueOp> {
        prop_oneof![
            (0u64..16).prop_map(|time_ps| QueueOp::Push { time_ps }),
            (0usize..64).prop_map(|slot| QueueOp::Cancel { slot }),
            Just(QueueOp::Pop),
            Just(QueueOp::Peek),
        ]
        .boxed()
    }

    fn precondition(&self, model: &QueueModel, op: &QueueOp) -> bool {
        match op {
            QueueOp::Cancel { .. } => !model.issued.is_empty(),
            _ => true,
        }
    }

    fn apply(
        &self,
        model: &mut QueueModel,
        system: &mut QueueSystem,
        op: &QueueOp,
    ) -> Result<(), String> {
        match *op {
            QueueOp::Push { time_ps } => {
                let index = model.issued.len() as u64;
                let id = system.queue.push(SimTime::from_ps(time_ps), index);
                system.ids.push(id);
                model.live.push((time_ps, index));
                model.issued.push(true);
                Ok(())
            }
            QueueOp::Cancel { slot } => {
                let idx = slot % model.issued.len();
                let expected = model.issued[idx];
                let got = system.queue.cancel(system.ids[idx]);
                if got != expected {
                    return Err(format!(
                        "cancel of event #{idx}: system returned {got}, model expected {expected}"
                    ));
                }
                if expected {
                    model.issued[idx] = false;
                    model.live.retain(|(_, i)| *i != idx as u64);
                }
                Ok(())
            }
            QueueOp::Pop => {
                let expected = model.min_entry();
                let got = system.queue.pop();
                let got_norm = got.map(|(t, payload)| (t.as_ps(), payload));
                if got_norm != expected {
                    return Err(format!(
                        "pop: system returned {got_norm:?}, model expected {expected:?}"
                    ));
                }
                if let Some((_, index)) = expected {
                    model.issued[index as usize] = false;
                    model.live.retain(|(_, i)| *i != index);
                }
                Ok(())
            }
            QueueOp::Peek => {
                let expected = model.min_entry().map(|(t, _)| t);
                let got = system.queue.peek_time().map(|t| t.as_ps());
                if got != expected {
                    return Err(format!(
                        "peek_time: system returned {got:?}, model expected {expected:?}"
                    ));
                }
                Ok(())
            }
        }
    }

    fn invariants(&self, model: &QueueModel, system: &QueueSystem) -> Result<(), String> {
        if system.queue.len() != model.live.len() {
            return Err(format!(
                "len: system {} vs model {}",
                system.queue.len(),
                model.live.len()
            ));
        }
        if system.queue.is_empty() != model.live.is_empty() {
            return Err("is_empty disagrees with len".to_string());
        }
        Ok(())
    }
}
