//! The "quantum congestion collapse" of Fig 8c — and its fix, Fig 8f.
//!
//! Four circuits share the dumbbell's bottleneck link with only two
//! communication qubits per link per node. With the long cutoff, pairs
//! squat in memory waiting for a match that cannot be generated (no free
//! qubits), and latency explodes. A shorter cutoff recycles memory and
//! restores multiplexing.
//!
//! ```sh
//! cargo run --release --example congestion
//! ```

use qnp::prelude::*;

fn run(cutoff: CutoffPolicy, label: &str) {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(3).build();
    let endpoints = [(d.a0, d.b0), (d.a1, d.b1), (d.a0, d.b1), (d.a1, d.b0)];
    let fidelity = 0.85;
    let mut vcs = Vec::new();
    for (h, t) in endpoints {
        vcs.push(sim.open_circuit(h, t, fidelity, cutoff).expect("plan"));
    }
    // Eight simultaneous requests, round-robin over the four circuits.
    let n_requests = 8;
    for i in 0..n_requests {
        let vc_idx = i % vcs.len();
        let (h, t) = endpoints[vc_idx];
        sim.submit_at(
            SimTime::ZERO,
            vcs[vc_idx],
            UserRequest {
                id: RequestId(i as u64 + 1),
                head: Address {
                    node: h,
                    identifier: 0,
                },
                tail: Address {
                    node: t,
                    identifier: 0,
                },
                min_fidelity: fidelity,
                demand: Demand::Pairs {
                    n: 25,
                    deadline: None,
                },
                request_type: RequestType::Keep,
                final_state: None,
            },
        );
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(300));

    let app = sim.app();
    println!("# {label}");
    println!("#   request   circuit   latency_s");
    let mut completed = 0;
    for i in 0..n_requests {
        let vc = vcs[i % vcs.len()];
        let id = RequestId(i as u64 + 1);
        match app.request_latency(vc, id) {
            Some(l) => {
                completed += 1;
                println!("    {id:>7}   {vc:>7}   {:9.2}", l.as_secs_f64());
            }
            None => println!("    {id:>7}   {vc:>7}   (did not complete in 300 s)"),
        }
    }
    println!(
        "#   completed {completed}/{n_requests}; pairs discarded: {}\n",
        sim.discarded_pairs()
    );
}

fn main() {
    println!("# Four circuits × eight requests over the shared bottleneck\n");
    run(
        CutoffPolicy::long(),
        "LONG cutoff — Fig 8c: congestion collapse",
    );
    run(
        CutoffPolicy::short(),
        "SHORT cutoff — Fig 8f: multiplexing restored",
    );
    println!("# The shorter cutoff frees squatting qubits, letting all four");
    println!("# circuits share the two bottleneck memory slots (paper §5.1).");
}
