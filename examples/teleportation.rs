//! Quantum state teleportation over network-delivered entanglement — the
//! paper's "create and keep" use case (§3.1): the application keeps its
//! delivered pair and uses it to send a data qubit deterministically.
//!
//! Alice (A0) prepares a data qubit in a non-trivial state, performs the
//! Bell measurement against her half of a network-delivered pair, and
//! sends the two classical bits to Bob (B0), who applies the Pauli
//! correction. The example verifies the output fidelity against the
//! directly computed expectation.
//!
//! ```sh
//! cargo run --release --example teleportation
//! ```

use qnp::prelude::*;
use qnp::quantum::gates;
use qnp::quantum::measure::{bell_measure_ideal, swap_circuit_outcome};
use qnp::quantum::{DensityMatrix, C64};

fn main() {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(7).build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.9, CutoffPolicy::short())
        .expect("plan");

    // Create-and-keep: one pair, delivered in the Φ+ frame so the
    // standard teleportation corrections apply unchanged.
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            id: RequestId(1),
            head: Address {
                node: d.a0,
                identifier: 1,
            },
            tail: Address {
                node: d.b0,
                identifier: 1,
            },
            min_fidelity: 0.9,
            demand: Demand::CreateAndKeep {
                n: 1,
                deadline: None,
                max_spread: SimDuration::from_secs(1),
            },
            request_type: RequestType::Keep,
            final_state: Some(BellState::PHI_PLUS),
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));

    // Fetch the delivered pair's true state from the application record.
    let app = sim.app();
    let delivered = app
        .deliveries
        .iter()
        .find(|r| r.node == d.a0)
        .expect("pair delivered at Alice");
    let pair_fidelity = delivered.oracle_fidelity.expect("oracle annotated");
    println!(
        "network delivered a Φ+ pair with fidelity {pair_fidelity:.4} in {}",
        delivered.time
    );

    // Alice's data qubit: |ψ⟩ = cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩.
    let (theta, phi) = (1.1f64, 0.7f64);
    let amp0 = C64::real((theta / 2.0).cos());
    let amp1 = C64::cis(phi).scale((theta / 2.0).sin());
    let data = DensityMatrix::pure(&[amp0, amp1]);

    // Model the delivered pair as a Werner state at the measured fidelity
    // (the delivery consumed the physical pair; its quality is what the
    // oracle reported).
    let w = qnp::quantum::formulas::werner_param(pair_fidelity);
    let phi_plus = BellState::PHI_PLUS.density();
    let mixed = DensityMatrix::maximally_mixed(2);
    let pair =
        DensityMatrix::from_matrix(&phi_plus.matrix().scale(w) + &mixed.matrix().scale(1.0 - w));

    // Teleport: joint = data ⊗ pair (qubits: 0 = data, 1 = Alice's half,
    // 2 = Bob's half). Alice Bell-measures (0, 1).
    let joint = data.tensor(&pair);
    let (outcome, bob_qubit) = bell_measure_ideal(&joint, 0, 1, 0.37);
    let mut bob = bob_qubit.expect("Bob's qubit remains");
    println!("Alice's Bell measurement outcome: {outcome} (two classical bits)");

    // Bob's correction: outcome B(x,z) ⇒ apply X^x Z^z.
    let (m_control, m_target) = (outcome.z, outcome.x);
    let decoded = swap_circuit_outcome(m_control, m_target);
    assert_eq!(decoded, outcome);
    if outcome.x {
        bob.apply_unitary(&gates::x(), &[0]);
    }
    if outcome.z {
        bob.apply_unitary(&gates::z(), &[0]);
    }

    // Verify.
    let f_out = bob.fidelity_pure(&[amp0, amp1]);
    // For a Werner-w resource: F_out = (1 + w)/2 … averaged over input
    // states it is (2F+1)/3; for pure teleportation theory on this input:
    let f_expected = (2.0 * pair_fidelity + 1.0) / 3.0;
    println!("teleported state fidelity: {f_out:.4}");
    println!("theory for a Werner resource (average case): {f_expected:.4}");
    println!("classical limit (no entanglement): 0.6667");
    assert!(f_out > 0.667, "teleportation must beat the classical limit");
    println!("=> beats the classical limit: genuine quantum teleportation");
}
