//! Simulation time.
//!
//! The simulator uses an integer picosecond clock. Integer time makes event
//! ordering exact and runs reproducible; picoseconds give sub-nanosecond
//! resolution (optical path lengths, gate pulses) while still covering
//! ~200 days of simulated time in a `u64`, far beyond any scenario in the
//! paper (the longest runs are ~50 simulated seconds).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per unit, used by the conversion helpers.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant on the simulation clock, in picoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as "infinite"/disabled.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Construct from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Construct from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Construct from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero; values beyond `u64` range clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_f64(s, PS_PER_S as f64)
    }

    /// Construct from fractional milliseconds (same clamping as
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_f64(ms, PS_PER_MS as f64)
    }

    /// Construct from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_f64(us, PS_PER_US as f64)
    }

    /// Construct from fractional nanoseconds.
    pub fn from_nanos_f64(ns: f64) -> Self {
        Self::from_f64(ns, PS_PER_NS as f64)
    }

    fn from_f64(v: f64, scale: f64) -> Self {
        if !v.is_finite() || v <= 0.0 {
            return SimDuration(if v.is_infinite() && v > 0.0 {
                u64::MAX
            } else {
                0
            });
        }
        let ps = v * scale;
        if ps >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ps.round() as u64)
        }
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Multiply by an integer, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a non-negative float, clamping into range.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        Self::from_f64(self.0 as f64 * k, 1.0)
    }

    /// True when this represents the "disabled / infinite" sentinel.
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == u64::MAX {
        return write!(f, "inf");
    }
    if ps >= PS_PER_S {
        write!(f, "{:.6}s", ps as f64 / PS_PER_S as f64)
    } else if ps >= PS_PER_MS {
        write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        write!(f, "{ps}ps")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_nanos(5).as_ps(), 5_000);
        assert_eq!(SimDuration::from_micros(2).as_ps(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_ps(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_S);
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_millis_f64(0.25).as_millis_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_ps(100);
        let d = SimDuration::from_ps(40);
        assert_eq!((t + d).as_ps(), 140);
        assert_eq!((t - d).as_ps(), 60);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ps(1) < SimTime::from_ps(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5.000ns");
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(9)), "9.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000000s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }
}
