//! Chaos workload: a steady bounded-request stream over a wired chain
//! whose links churn through a seeded component-fault schedule
//! ([`FaultPlan`] MTBF/MTTR outages on every hop) — the PR-9
//! robustness tentpole measured as a benchmark.
//!
//! Three headline metrics, all **simulation-domain deterministic**
//! (pure functions of `(seed, config)`, diffed at `--tolerance 0`):
//!
//! * **availability** — the mean up-time fraction of the churned links
//!   over the horizon, computed from the expanded schedule (the
//!   workload's *input* severity, pinned so baseline drift in the
//!   expansion itself is caught);
//! * **completion rate under churn** — completed / submitted bounded
//!   requests by the end of the settle window;
//! * **recovery latency** — mean time from each link repair to the
//!   next confirmed end-to-end delivery after it (how fast the
//!   protocol pipeline refills once a hop returns).
//!
//! The scenario also reports post-settle leak counters (live pairs,
//! armed timers, retained correlators), all pinned at zero: a fault
//! schedule may cost throughput, never memory. The decoherence
//! checkpoint policy is a config leg — [`ChaosConfig::checkpoint`]
//! `None` (lazy on-touch) vs `Interval` runs must agree on every
//! physical metric to ≤ 1e-12 (asserted in this module's tests and
//! recorded as separate baseline points).

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::app::Payload;
use qn_netsim::build::NetworkBuilder;
use qn_netsim::{CheckpointPolicy, ComponentEvent, FaultPlan};
use qn_routing::{chain, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

/// Full configuration of one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Chain length (≥ 3: every request crosses at least one repeater).
    pub n_nodes: usize,
    /// Bounded KEEP requests submitted, one every `request_interval`.
    pub n_requests: usize,
    /// Pairs per request.
    pub pairs_per_request: u64,
    /// Spacing between submissions.
    pub request_interval: SimDuration,
    /// End-to-end fidelity target.
    pub fidelity: f64,
    /// Mean time between failures, per link.
    pub mtbf: SimDuration,
    /// Mean time to repair, per link.
    pub mttr: SimDuration,
    /// Churn horizon: failures are drawn up to here.
    pub horizon: SimDuration,
    /// Extra quiescent run after the horizon (drain + leak check).
    pub settle: SimDuration,
    /// Periodic decoherence checkpoint interval (`None` = the lazy
    /// on-touch default).
    pub checkpoint: Option<SimDuration>,
}

impl ChaosConfig {
    /// A CI-smoke-sized configuration: a 4-chain, 8 two-pair requests
    /// over 12 simulated seconds of churn (mean 600 ms between
    /// failures, 80 ms repairs per link), 12 s settle — half of it the
    /// post-cancel drain, which must exceed the full TRACK retransmit
    /// backoff budget (~5.1 s) for the leak counters to read zero.
    pub fn smoke(n_requests: usize, checkpoint: Option<SimDuration>) -> Self {
        ChaosConfig {
            n_nodes: 4,
            n_requests,
            pairs_per_request: 2,
            request_interval: SimDuration::from_millis(1_200),
            fidelity: 0.8,
            mtbf: SimDuration::from_millis(600),
            mttr: SimDuration::from_millis(80),
            horizon: SimDuration::from_secs(12),
            settle: SimDuration::from_secs(12),
            checkpoint: checkpoint.or(Some(SimDuration::from_millis(250))),
        }
    }

    /// The lazy-checkpoint twin of this config (satellite: Interval vs
    /// on-touch runs must agree on physical metrics to ≤ 1e-12).
    pub fn lazy(mut self) -> Self {
        self.checkpoint = None;
        self
    }
}

/// Deterministic results of one chaos run. Every field is a pure
/// function of `(seed, config)` — no wall-clock anywhere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosPoint {
    /// Requests submitted.
    pub requests_submitted: usize,
    /// Requests completed by the end of the settle window.
    pub requests_completed: usize,
    /// Requests cancelled at the mid-settle grace deadline (abandoned
    /// by the bounded retransmission budget during churn).
    pub requests_cancelled: usize,
    /// Completed / submitted.
    pub completion_rate: f64,
    /// Confirmed end-to-end pairs delivered (both ends confirmed).
    pub pairs_delivered: usize,
    /// Link outages drawn by the schedule inside the horizon.
    pub outages: usize,
    /// Mean up-time fraction of the churned links over the horizon.
    pub availability: f64,
    /// Mean time (seconds) from a link repair to the next confirmed
    /// delivery after it; NaN when no repair saw a later delivery.
    pub recovery_latency_s: f64,
    /// Live pairs + armed timers + retained correlator records after
    /// the settle — pinned at zero (a fault schedule must not leak).
    pub leaked: usize,
    /// Simulation events processed (informational: differs between
    /// checkpoint legs by the sweep events themselves).
    pub events_processed: u64,
}

/// The per-link churn plan for a config.
fn churn_plan(cfg: &ChaosConfig, topology: &qn_routing::Topology) -> FaultPlan {
    let mut plan = FaultPlan::new().horizon(SimTime::ZERO + cfg.horizon);
    for l in topology.links() {
        plan = plan.link_mtbf(l.a, l.b, cfg.mtbf, cfg.mttr);
    }
    plan
}

/// One chaos run: submit the request stream over the churning chain,
/// run to the horizon plus the settle, and measure.
pub fn chaos_scenario(seed: u64, cfg: &ChaosConfig) -> ChaosPoint {
    let topology = chain(
        cfg.n_nodes,
        HardwareParams::simulation(),
        FibreParams::lab_2m(),
    );
    let plan = churn_plan(cfg, &topology);
    // The schedule's input severity, measured from the same expansion
    // the runtime will execute.
    let schedule = plan.expand(seed);
    let horizon = SimTime::ZERO + cfg.horizon;
    let mut down_at = std::collections::BTreeMap::new();
    let mut downtime = SimDuration::ZERO;
    let mut outages = 0usize;
    let mut repairs: Vec<SimTime> = Vec::new();
    for (at, ev) in &schedule {
        match ev {
            ComponentEvent::LinkDown { a, b } => {
                down_at.insert((*a, *b), *at);
                outages += 1;
            }
            ComponentEvent::LinkUp { a, b } => {
                if let Some(t0) = down_at.remove(&(*a, *b)) {
                    downtime += (*at).min(horizon).since(t0.min(horizon));
                    if *at < horizon {
                        repairs.push(*at);
                    }
                }
            }
            _ => {}
        }
    }
    let n_links = topology.links().len();
    let availability = 1.0 - downtime.as_secs_f64() / (cfg.horizon.as_secs_f64() * n_links as f64);

    let mut builder = NetworkBuilder::new(topology)
        .seed(seed)
        .signalling_on_wire()
        .track_timeout(SimDuration::from_secs(2))
        .fault_plan(plan);
    if let Some(dt) = cfg.checkpoint {
        builder = builder.checkpoint(CheckpointPolicy::Interval(dt));
    }
    let mut sim = builder.build();
    let (head, tail) = (NodeId(0), NodeId((cfg.n_nodes - 1) as u32));
    let vc = sim
        .open_circuit(head, tail, cfg.fidelity, CutoffPolicy::short())
        .expect("chain circuit plans");
    for i in 0..cfg.n_requests {
        sim.submit_at(
            SimTime::ZERO + cfg.request_interval * i as u64,
            vc,
            keep_request(
                i as u64 + 1,
                head,
                tail,
                cfg.fidelity,
                cfg.pairs_per_request,
            ),
        );
    }
    // First half of the settle: a quiescent grace window in which any
    // request whose retransmission budget survived the churn completes.
    // Then cancel the stragglers — bounded requests abandoned by the
    // bounded-redundancy protocol would otherwise generate pairs
    // forever — and drain the second half, after which the leak
    // counters must read zero.
    let grace = horizon + cfg.settle / 2;
    sim.run_until(grace);
    // Natural completions only: cancelling a bounded request also ends
    // it with a COMPLETE (and a RequestCompleted notification), so the
    // completion count is snapshotted before the cancellations go in.
    let requests_completed = sim.app().completed.len();
    let mut cancelled = 0usize;
    for i in 0..cfg.n_requests {
        let id = qn_net::RequestId(i as u64 + 1);
        if !sim.app().completed.contains_key(&(vc, id)) {
            sim.cancel_at(grace, vc, id);
            cancelled += 1;
        }
    }
    sim.run_until(horizon + cfg.settle);

    let app = sim.app();
    let confirmed: Vec<SimTime> = app
        .deliveries
        .iter()
        .filter(|d| {
            matches!(
                d.payload,
                Payload::Qubit { .. } | Payload::EarlyTracking { .. }
            )
        })
        .map(|d| d.time)
        .collect();
    // Recovery latency: each repair inside the horizon, matched to the
    // first confirmed delivery at-or-after it (deliveries are recorded
    // in time order).
    let mut lat_sum = 0.0f64;
    let mut lat_n = 0usize;
    for r in &repairs {
        if let Some(d) = confirmed.iter().find(|t| **t >= *r) {
            lat_sum += d.since(*r).as_secs_f64();
            lat_n += 1;
        }
    }
    let recovery_latency_s = if lat_n > 0 {
        lat_sum / lat_n as f64
    } else {
        f64::NAN
    };
    let leaked = sim.live_pairs() + sim.armed_timers() + sim.retained_correlators();
    ChaosPoint {
        requests_submitted: cfg.n_requests,
        requests_completed,
        requests_cancelled: cancelled,
        completion_rate: requests_completed as f64 / cfg.n_requests.max(1) as f64,
        pairs_delivered: confirmed.len() / 2,
        outages,
        availability,
        recovery_latency_s,
        leaked,
        events_processed: sim.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> ChaosConfig {
        ChaosConfig::smoke(6, None)
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = smoke_cfg();
        assert_eq!(chaos_scenario(5100, &cfg), chaos_scenario(5100, &cfg));
    }

    #[test]
    fn churn_fires_and_nothing_leaks() {
        let cfg = smoke_cfg();
        let p = chaos_scenario(5100, &cfg);
        assert!(p.outages > 0, "12 s at 600 ms MTBF must draw outages");
        assert!(
            p.availability > 0.0 && p.availability < 1.0,
            "availability {p:?}"
        );
        assert_eq!(p.leaked, 0, "fault schedule leaked: {p:?}");
        assert!(p.requests_completed > 0, "churn starved everything: {p:?}");
        assert!(p.requests_completed <= p.requests_submitted);
    }

    #[test]
    fn checkpoint_interval_matches_lazy_physics() {
        // The ROADMAP tail: the periodic whole-store decoherence sweep
        // must be physically invisible — every sim-domain metric except
        // the event count (the sweep events themselves) agrees with the
        // lazy on-touch default to ≤ 1e-12.
        let interval = smoke_cfg();
        let lazy = smoke_cfg().lazy();
        assert!(interval.checkpoint.is_some() && lazy.checkpoint.is_none());
        for seed in [5100, 5101] {
            let a = chaos_scenario(seed, &interval);
            let b = chaos_scenario(seed, &lazy);
            assert_eq!(a.requests_submitted, b.requests_submitted);
            assert_eq!(a.requests_completed, b.requests_completed);
            assert_eq!(a.pairs_delivered, b.pairs_delivered);
            assert_eq!(a.outages, b.outages);
            assert_eq!(a.leaked, 0);
            assert_eq!(b.leaked, 0);
            assert!((a.completion_rate - b.completion_rate).abs() <= 1e-12);
            assert!((a.availability - b.availability).abs() <= 1e-12);
            let lat = (a.recovery_latency_s, b.recovery_latency_s);
            match lat {
                (x, y) if x.is_nan() && y.is_nan() => {}
                (x, y) => assert!((x - y).abs() <= 1e-12, "recovery latency diverged: {lat:?}"),
            }
        }
    }
}
