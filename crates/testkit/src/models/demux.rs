//! Reference model of the network layer's symmetric demultiplexer
//! (`qn_net::SymmetricDemux`), paper §4.1 "Aggregation" / App. C.3.
//!
//! The model keeps the *entire* epoch history as a plain list of
//! request sets and re-derives every observable from it: epoch counters
//! returned by `add`/`remove`, monotone activation with the
//! deterministic auto-activation rule (an empty active set jumps
//! forward to the next non-empty epoch), round-robin assignment over
//! the active set. This is strictly stronger than the lock-step
//! property tests it replaces: two real demultiplexers agreeing with
//! *each other* could still both be wrong; here each is checked against
//! the specification.

use crate::ModelSpec;
use proptest::prelude::*;
use qn_net::ids::{Epoch, RequestId};
use qn_net::SymmetricDemux;

/// One operation of the demultiplexer interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemuxOp {
    /// Stage a request arrival (creates the next epoch).
    Add(u8),
    /// Stage a request completion (creates the next epoch).
    Remove(u8),
    /// Activate the newest epoch (head-end TRACK announcement).
    ActivateLatest,
    /// Activate the epoch `back` steps behind the newest — stale for
    /// `back > 0`, exercising the monotonicity rule.
    ActivateBack(u8),
    /// Assign the next pair.
    Next,
}

/// The reference: full epoch history, an active index, and a cursor.
pub struct DemuxModel {
    /// `sets[e]` is the request set of epoch `e`.
    sets: Vec<Vec<u64>>,
    active: usize,
    cursor: u64,
}

impl DemuxModel {
    fn auto_activate(&mut self) {
        if !self.sets[self.active].is_empty() {
            return;
        }
        if let Some(e) = (self.active..self.sets.len()).find(|e| !self.sets[*e].is_empty()) {
            self.active = e;
        }
    }

    fn latest(&self) -> usize {
        self.sets.len() - 1
    }

    fn activate(&mut self, epoch: usize) {
        if epoch > self.active && epoch <= self.latest() {
            self.active = epoch;
        }
        self.auto_activate();
    }
}

/// [`ModelSpec`] for the demultiplexer.
pub struct DemuxSpec;

impl DemuxSpec {
    fn compare(model: &DemuxModel, system: &SymmetricDemux) -> Result<(), String> {
        if system.latest() != Epoch(model.latest() as u64) {
            return Err(format!(
                "latest: system {:?} vs model {}",
                system.latest(),
                model.latest()
            ));
        }
        if system.active() != Epoch(model.active as u64) {
            return Err(format!(
                "active: system {:?} vs model {}",
                system.active(),
                model.active
            ));
        }
        let expected: Vec<RequestId> = model.sets[model.active]
            .iter()
            .map(|id| RequestId(*id))
            .collect();
        if system.active_set() != expected.as_slice() {
            return Err(format!(
                "active set: system {:?} vs model {expected:?}",
                system.active_set()
            ));
        }
        Ok(())
    }
}

impl ModelSpec for DemuxSpec {
    type Op = DemuxOp;
    type Model = DemuxModel;
    type System = SymmetricDemux;

    fn new_model(&self) -> DemuxModel {
        DemuxModel {
            sets: vec![Vec::new()],
            active: 0,
            cursor: 0,
        }
    }

    fn new_system(&self) -> SymmetricDemux {
        SymmetricDemux::new()
    }

    fn op_strategy(&self) -> BoxedStrategy<DemuxOp> {
        prop_oneof![
            (0u8..8).prop_map(DemuxOp::Add),
            (0u8..8).prop_map(DemuxOp::Remove),
            Just(DemuxOp::ActivateLatest),
            (0u8..6).prop_map(DemuxOp::ActivateBack),
            Just(DemuxOp::Next),
        ]
        .boxed()
    }

    fn apply(
        &self,
        model: &mut DemuxModel,
        system: &mut SymmetricDemux,
        op: &DemuxOp,
    ) -> Result<(), String> {
        match *op {
            DemuxOp::Add(id) => {
                let got = system.add_request(RequestId(u64::from(id)));
                let mut set = model.sets[model.latest()].clone();
                if !set.contains(&u64::from(id)) {
                    set.push(u64::from(id));
                }
                model.sets.push(set);
                model.auto_activate();
                if got != Epoch(model.latest() as u64) {
                    return Err(format!(
                        "add({id}) returned {got:?}, model expected epoch {}",
                        model.latest()
                    ));
                }
                Ok(())
            }
            DemuxOp::Remove(id) => {
                let got = system.remove_request(RequestId(u64::from(id)));
                let mut set = model.sets[model.latest()].clone();
                set.retain(|r| *r != u64::from(id));
                model.sets.push(set);
                model.auto_activate();
                if got != Epoch(model.latest() as u64) {
                    return Err(format!(
                        "remove({id}) returned {got:?}, model expected epoch {}",
                        model.latest()
                    ));
                }
                Ok(())
            }
            DemuxOp::ActivateLatest => {
                let e = system.latest();
                system.activate(e);
                let latest = model.latest();
                model.activate(latest);
                Ok(())
            }
            DemuxOp::ActivateBack(back) => {
                let target = model.latest().saturating_sub(usize::from(back));
                system.activate(Epoch(target as u64));
                model.activate(target);
                Ok(())
            }
            DemuxOp::Next => {
                let set = &model.sets[model.active];
                let expected = if set.is_empty() {
                    None
                } else {
                    let pick = set[(model.cursor % set.len() as u64) as usize];
                    model.cursor += 1;
                    Some(RequestId(pick))
                };
                let got = system.next_request();
                if got != expected {
                    return Err(format!(
                        "next_request: system {got:?}, model expected {expected:?}"
                    ));
                }
                Ok(())
            }
        }
    }

    fn invariants(&self, model: &DemuxModel, system: &SymmetricDemux) -> Result<(), String> {
        Self::compare(model, system)
    }
}
