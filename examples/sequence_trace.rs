//! Reproduce the paper's **Figure 6** — the example message sequence of
//! the QNP — as a live protocol trace on a 4-node chain.
//!
//! Expected flow (paper): REQUEST → FORWARD cascade → link-pair
//! generation on each link → immediate SWAPs at the repeaters → TRACK
//! messages in both directions collecting swap records → PAIR delivered
//! at both ends → COMPLETE cascade.
//!
//! ```sh
//! cargo run --release --example sequence_trace
//! ```

use qnp::prelude::*;
use qnp::routing::chain;

fn main() {
    // Four nodes: Alice(0) — R1(1) — R2(2) — Bob(3), lab links.
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(11).with_trace().build();
    let vc = sim
        .open_circuit(NodeId(0), NodeId(3), 0.8, CutoffPolicy::short())
        .expect("plan");

    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            id: RequestId(1),
            head: Address {
                node: NodeId(0),
                identifier: 1,
            },
            tail: Address {
                node: NodeId(3),
                identifier: 1,
            },
            min_fidelity: 0.8,
            demand: Demand::Pairs {
                n: 1,
                deadline: None,
            },
            request_type: RequestType::Keep,
            final_state: None,
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));

    println!("# Figure 6 — QNP message sequence (4-node circuit, 1 pair)");
    println!("#");
    println!("{}", sim.trace().render());

    // Verify the canonical ordering of Fig 6 appears in the trace.
    let rows = sim.trace().rows();
    let first = |needle: &str| {
        rows.iter()
            .position(|r| r.text.contains(needle))
            .unwrap_or(usize::MAX)
    };
    let forward = first("FORWARD");
    let pair = first("pair");
    let swap = first("SWAP start");
    let track = first("TRACK");
    let deliver = first("deliver");
    let complete = first("COMPLETE");
    assert!(forward < pair, "FORWARD precedes link generation");
    assert!(pair < swap, "link pairs precede swaps");
    assert!(track != usize::MAX && swap != usize::MAX);
    assert!(deliver > swap, "delivery follows the swaps");
    assert!(complete > deliver, "COMPLETE closes the request");
    println!("# sequence order check: FORWARD → pairs → SWAP → TRACK → PAIR → COMPLETE  ✓");
}
