//! Dense complex matrices.
//!
//! The engine only ever manipulates matrices up to 16×16 (four qubits:
//! two entangled pairs joined for an entanglement swap), so a simple
//! row-major `Vec` with O(n³) multiplication is the right tool — no
//! sparsity, no BLAS, no allocation tricks.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense complex matrix.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// The n×n identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Build from nested row slices (for gate definitions and tests).
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major slice of real values.
    pub fn from_reals(rows: usize, cols: usize, vals: &[f64]) -> Self {
        assert_eq!(vals.len(), rows * cols);
        CMatrix {
            rows,
            cols,
            data: vals.iter().map(|v| C64::real(*v)).collect(),
        }
    }

    /// A column vector from a slice.
    pub fn col_vector(v: &[C64]) -> Self {
        CMatrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix trace.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square());
        (0..self.rows).fold(C64::ZERO, |acc, i| acc + self[(i, i)])
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Multiply every entry by a real scalar.
    pub fn scale(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Multiply every entry by a complex scalar.
    pub fn scale_c(&self, k: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * k).collect(),
        }
    }

    /// Hermiticity check within tolerance.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &CMatrix, eps: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// Unitarity check `U†U ≈ I` within tolerance.
    pub fn is_unitary(&self, eps: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.approx_eq(&CMatrix::identity(self.rows), eps)
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[C64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = C64;
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> C64 {
        C64::real(v)
    }

    #[test]
    fn identity_multiplication() {
        let m = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = CMatrix::identity(2);
        assert!((&m * &i).approx_eq(&m, 1e-15));
        assert!((&i * &m).approx_eq(&m, 1e-15));
    }

    #[test]
    fn product_matches_hand_computation() {
        let a = CMatrix::from_reals(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = CMatrix::from_reals(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = &a * &b;
        let expect = CMatrix::from_reals(2, 2, &[58.0, 64.0, 139.0, 154.0]);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn dagger_of_complex_matrix() {
        let m = CMatrix::from_rows(&[
            &[C64::new(1.0, 2.0), C64::new(0.0, -1.0)],
            &[C64::new(3.0, 0.0), C64::new(0.0, 4.0)],
        ]);
        let d = m.dagger();
        assert_eq!(d[(0, 0)], C64::new(1.0, -2.0));
        assert_eq!(d[(0, 1)], C64::new(3.0, 0.0));
        assert_eq!(d[(1, 0)], C64::new(0.0, 1.0));
        assert_eq!(d[(1, 1)], C64::new(0.0, -4.0));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let b = CMatrix::from_reals(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        // I ⊗ X swaps within blocks.
        assert_eq!(k[(0, 1)], r(1.0));
        assert_eq!(k[(1, 0)], r(1.0));
        assert_eq!(k[(2, 3)], r(1.0));
        assert_eq!(k[(3, 2)], r(1.0));
        assert_eq!(k[(0, 0)], r(0.0));
    }

    #[test]
    fn trace_adds_diagonal() {
        let m = CMatrix::from_reals(3, 3, &[1.0, 9.0, 9.0, 9.0, 2.0, 9.0, 9.0, 9.0, 3.0]);
        assert_eq!(m.trace(), r(6.0));
    }

    #[test]
    fn hermitian_and_unitary_checks() {
        let h = CMatrix::from_rows(&[
            &[r(1.0), C64::new(0.0, -1.0)],
            &[C64::new(0.0, 1.0), r(2.0)],
        ]);
        assert!(h.is_hermitian(1e-12));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let had = CMatrix::from_reals(2, 2, &[s, s, s, -s]);
        assert!(had.is_unitary(1e-12));
        assert!(!CMatrix::from_reals(2, 2, &[1.0, 1.0, 0.0, 1.0]).is_unitary(1e-12));
    }

    #[test]
    fn kron_of_vectors() {
        let v0 = CMatrix::col_vector(&[C64::ONE, C64::ZERO]);
        let v1 = CMatrix::col_vector(&[C64::ZERO, C64::ONE]);
        let v01 = v0.kron(&v1);
        assert_eq!(v01.rows(), 4);
        assert_eq!(v01[(1, 0)], C64::ONE);
        assert_eq!(v01[(0, 0)], C64::ZERO);
    }
}
