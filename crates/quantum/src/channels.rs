//! Kraus noise channels.
//!
//! Every noise process the paper models maps onto one of these channels:
//!
//! * P1 (imperfect link pairs) — mixing done in `qn-hardware::heralding`;
//! * P2 (swap composition) — emerges from the state algebra itself;
//! * P3 (imperfect gates) — [`depolarizing`] after each gate;
//! * P4 (decoherence in memory) — [`dephasing`] (T2*) and
//!   [`amplitude_damping`] (T1) applied for the idle duration.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Single-qubit depolarizing channel: with probability `p` replace the
/// qubit by the maximally mixed state.
///
/// Kraus set: `{√(1−3p/4)·I, √(p/4)·X, √(p/4)·Y, √(p/4)·Z}`.
pub fn depolarizing(p: f64) -> Vec<CMatrix> {
    let p = p.clamp(0.0, 1.0);
    let k0 = crate::gates::identity().scale((1.0 - 3.0 * p / 4.0).sqrt());
    let kx = crate::gates::x().scale((p / 4.0).sqrt());
    let ky = crate::gates::y().scale((p / 4.0).sqrt());
    let kz = crate::gates::z().scale((p / 4.0).sqrt());
    vec![k0, kx, ky, kz]
}

/// Two-qubit depolarizing channel: with probability `p` replace both
/// qubits by the maximally mixed two-qubit state. Kraus set: the 16
/// two-qubit Paulis with appropriate weights.
pub fn depolarizing_2q(p: f64) -> Vec<CMatrix> {
    let p = p.clamp(0.0, 1.0);
    let paulis = [
        crate::gates::identity(),
        crate::gates::x(),
        crate::gates::y(),
        crate::gates::z(),
    ];
    let mut out = Vec::with_capacity(16);
    for (i, a) in paulis.iter().enumerate() {
        for (j, b) in paulis.iter().enumerate() {
            let weight = if i == 0 && j == 0 {
                1.0 - 15.0 * p / 16.0
            } else {
                p / 16.0
            };
            out.push(a.kron(b).scale(weight.sqrt()));
        }
    }
    out
}

/// Dephasing (phase-flip) channel: applies Z with probability `p`.
/// `p = 1/2` removes all coherence.
pub fn dephasing(p: f64) -> Vec<CMatrix> {
    let p = p.clamp(0.0, 0.5);
    vec![
        crate::gates::identity().scale((1.0 - p).sqrt()),
        crate::gates::z().scale(p.sqrt()),
    ]
}

/// Bit-flip channel: applies X with probability `p`.
pub fn bit_flip(p: f64) -> Vec<CMatrix> {
    let p = p.clamp(0.0, 1.0);
    vec![
        crate::gates::identity().scale((1.0 - p).sqrt()),
        crate::gates::x().scale(p.sqrt()),
    ]
}

/// Amplitude damping channel with decay probability `gamma`
/// (relaxation towards `|0⟩`).
pub fn amplitude_damping(gamma: f64) -> Vec<CMatrix> {
    let gamma = gamma.clamp(0.0, 1.0);
    let k0 = CMatrix::from_rows(&[
        &[C64::ONE, C64::ZERO],
        &[C64::ZERO, C64::real((1.0 - gamma).sqrt())],
    ]);
    let k1 = CMatrix::from_rows(&[
        &[C64::ZERO, C64::real(gamma.sqrt())],
        &[C64::ZERO, C64::ZERO],
    ]);
    vec![k0, k1]
}

/// Dephasing probability for idling `t` seconds with dephasing time `t2`
/// (exponential coherence decay `e^{−t/T2}`): `p = (1 − e^{−t/T2})/2`.
pub fn dephasing_prob(t: f64, t2: f64) -> f64 {
    if !t2.is_finite() || t2 <= 0.0 {
        return 0.0;
    }
    0.5 * (1.0 - (-t / t2).exp())
}

/// Amplitude-damping probability for idling `t` seconds with relaxation
/// time `t1`: `γ = 1 − e^{−t/T1}`.
pub fn damping_prob(t: f64, t1: f64) -> f64 {
    if !t1.is_finite() || t1 <= 0.0 {
        return 0.0;
    }
    1.0 - (-t / t1).exp()
}

/// Convert a gate *fidelity* specification (Table 1) into a depolarizing
/// probability for a `dim`-dimensional target (2 for 1-qubit, 4 for
/// 2-qubit gates): solving `(1−p) + p/dim = F` gives
/// `p = (1 − F)·dim/(dim − 1)`.
pub fn depolarizing_param_for_fidelity(fidelity: f64, dim: usize) -> f64 {
    let d = dim as f64;
    ((1.0 - fidelity) * d / (d - 1.0)).clamp(0.0, 1.0)
}

/// Verify a Kraus set is trace-preserving: `Σ Kᵢ†Kᵢ = I`.
pub fn is_trace_preserving(kraus: &[CMatrix], eps: f64) -> bool {
    let dim = kraus[0].rows();
    let mut sum = CMatrix::zeros(dim, dim);
    for k in kraus {
        sum = &sum + &(&k.dagger() * k);
    }
    sum.approx_eq(&CMatrix::identity(dim), eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DensityMatrix;

    #[test]
    fn all_channels_trace_preserving() {
        for p in [0.0, 0.1, 0.5, 1.0] {
            assert!(is_trace_preserving(&depolarizing(p), 1e-12), "depol {p}");
            assert!(
                is_trace_preserving(&depolarizing_2q(p), 1e-12),
                "depol2 {p}"
            );
            assert!(is_trace_preserving(&bit_flip(p), 1e-12), "flip {p}");
            assert!(is_trace_preserving(&amplitude_damping(p), 1e-12), "ad {p}");
        }
        for p in [0.0, 0.2, 0.5] {
            assert!(is_trace_preserving(&dephasing(p), 1e-12), "dephase {p}");
        }
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::basis(1, 1);
        rho.apply_kraus(&depolarizing(1.0), &[0]);
        assert!(rho
            .matrix()
            .approx_eq(DensityMatrix::maximally_mixed(1).matrix(), 1e-12));
    }

    #[test]
    fn full_two_qubit_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::basis(2, 3);
        rho.apply_kraus(&depolarizing_2q(1.0), &[0, 1]);
        assert!(rho
            .matrix()
            .approx_eq(DensityMatrix::maximally_mixed(2).matrix(), 1e-10));
    }

    #[test]
    fn dephasing_kills_coherence_not_populations() {
        let mut rho = DensityMatrix::basis(1, 0);
        rho.apply_unitary(&crate::gates::h(), &[0]);
        rho.apply_kraus(&dephasing(0.5), &[0]);
        // Fully dephased |+> is maximally mixed.
        assert!((rho.purity() - 0.5).abs() < 1e-12);
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_relaxes_to_ground() {
        let mut rho = DensityMatrix::basis(1, 1);
        rho.apply_kraus(&amplitude_damping(1.0), &[0]);
        assert!((rho.prob_one(0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_prob_limits() {
        assert_eq!(dephasing_prob(0.0, 1.0), 0.0);
        assert!((dephasing_prob(f64::INFINITY, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(dephasing_prob(1.0, f64::INFINITY), 0.0);
        // One T2: p = (1 - 1/e)/2 ≈ 0.316.
        assert!((dephasing_prob(1.0, 1.0) - 0.31606).abs() < 1e-4);
    }

    #[test]
    fn depolarizing_param_matches_fidelity_definition() {
        // Applying depolarizing(p) to a basis state leaves fidelity
        // (1-p) + p/2 — check the inversion for 1-qubit gates.
        let f = 0.99;
        let p = depolarizing_param_for_fidelity(f, 2);
        let mut rho = DensityMatrix::basis(1, 0);
        rho.apply_kraus(&depolarizing(p), &[0]);
        let measured = rho.fidelity_pure(&[crate::complex::C64::ONE, crate::complex::C64::ZERO]);
        assert!((measured - f).abs() < 1e-12, "got {measured}");
    }

    #[test]
    fn depolarizing_param_2q() {
        let f = 0.998;
        let p = depolarizing_param_for_fidelity(f, 4);
        let mut rho = DensityMatrix::basis(2, 2);
        rho.apply_kraus(&depolarizing_2q(p), &[0, 1]);
        let mut target = vec![crate::complex::C64::ZERO; 4];
        target[2] = crate::complex::C64::ONE;
        let measured = rho.fidelity_pure(&target);
        assert!((measured - f).abs() < 1e-9, "got {measured}");
    }
}
