//! # qn-link — the link layer entanglement generation service
//!
//! The layer directly below the QNP in the paper's stack (Fig 2),
//! modelled on the link layer protocol of Ref [19] (Dahlberg et al.,
//! SIGCOMM'19). It turns the probabilistic midpoint-heralding physics into
//! a *meaningful service*: batched, multiplexed, retried entanglement
//! generation with per-pair identifiers and Bell-state announcements.
//!
//! The service properties the QNP requires (paper §3.5):
//!
//! 1. link-unique request identifiers ([`LinkLabel`], the Purpose ID);
//! 2. per-pair identifiers ([`EntanglementId`]);
//! 3. Bell-state announcement per pair ([`LinkPair::announced`]);
//! 4. QoS knobs: minimum fidelity, counted or continuous demand, and a
//!    scheduling weight ([`LinkRequest`]).
//!
//! The protocol core ([`LinkProtocol`]) is sans-IO and deterministic; the
//! simulation runtime in `qn-netsim` drives it against the hardware model
//! and the event queue.

#![warn(missing_docs)]

pub mod protocol;
pub mod scheduler;
pub mod service;

pub use protocol::{GenerateSpec, LinkEvent, LinkProtocol};
pub use scheduler::TimeShareScheduler;
pub use service::{EntanglementId, LinkLabel, LinkPair, LinkRequest, PairDemand, RejectReason};
