//! # qn-bench — benchmark harnesses reproducing the paper's evaluation
//!
//! One `cargo bench` target per table/figure of the paper (all
//! `harness = false`, printing the same rows/series the paper plots),
//! plus Criterion micro-benchmarks of the core data structures.
//!
//! The crate is split by responsibility:
//!
//! * [`scenarios`] — one simulation run of one configuration at one
//!   seed; pure functions of their arguments;
//! * [`sweep`] — the figures' seed loops, hoisted onto the `qn_exec`
//!   parallel engine (bit-identical to serial at any `QNP_THREADS`);
//! * [`report`] — machine-readable JSON baselines
//!   (`target/qnp-bench/<figure>.json`) and the regression differ
//!   behind `cargo run --example bench_diff`.
//!
//! Environment knobs (documented in EXPERIMENTS.md):
//!
//! * `QNP_RUNS` — number of seeds averaged per configuration (default
//!   varies per figure; the paper uses 100);
//! * `QNP_PAIRS` — pairs per request for Fig 8 (paper: 100);
//! * `QNP_THREADS` — sweep worker threads (default: available
//!   parallelism);
//! * `QNP_BASELINE_DIR` — where JSON baselines land (default
//!   `target/qnp-bench`).

pub mod report;
pub mod scenarios;
pub mod sweep;

pub use report::{baseline_dir, diff_baselines, Baseline, DiffKind, DiffReport, Direction, Json};
pub use scenarios::*;
pub use sweep::*;
