//! Three-way representation-agreement suite (quantum level): random
//! channel/measure sequences run simultaneously against
//!
//! 1. the [`PairState::Bell`] closed-form fast path,
//! 2. the dense [`DensityMatrix`] engine, and
//! 3. the two-bit Pauli-frame reference (exact on the noiseless
//!    prefix of every sequence),
//!
//! asserting agreement of every observable — all four Bell-diagonal
//! coefficients, both marginal measurement probabilities, trace,
//! purity, and sampled measurement outcomes — to 1e-12. The
//! swap/distill legs of the three-way test live in
//! `qn_hardware/tests/prop_threeway.rs` where the pair store's
//! conditional-map tables are in play.

use proptest::prelude::*;
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_quantum::pairstate::{BellDiagonal, PairState};
use qn_quantum::DensityMatrix;
use qn_testkit::{ModelSpec, ModelTest};

const EPS: f64 = 1e-12;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// A perfect Pauli (0 = X, 1 = Y, 2 = Z) on one end.
    Pauli { end: bool, which: u8 },
    /// Dephasing with phase-flip probability `p`.
    Dephase { end: bool, p: f64 },
    /// Single-qubit depolarizing.
    Depolarize { end: bool, p: f64 },
    /// Two-qubit depolarizing.
    Depolarize2q { p: f64 },
    /// Amplitude damping (the op that forces the representation to
    /// track population asymmetries).
    Damp { end: bool, gamma: f64 },
    /// Z measurement with an explicit uniform sample.
    MeasureZ { end: bool, u: f64 },
}

/// The Pauli-frame reference: which Bell state a perfect tracker
/// assigns, and whether the sequence so far has been noiseless (the
/// only regime where the two-bit frame predicts the exact state).
#[derive(Clone, Copy, Debug)]
struct Frame {
    state: BellState,
    pure: bool,
}

struct Dual {
    bell: PairState,
    dense: DensityMatrix,
}

struct ThreeWaySpec;

impl ModelSpec for ThreeWaySpec {
    type Op = Op;
    type Model = Frame;
    type System = Dual;

    fn new_model(&self) -> Frame {
        Frame {
            state: BellState::PHI_PLUS,
            pure: true,
        }
    }

    fn new_system(&self) -> Dual {
        Dual {
            bell: PairState::Bell(BellDiagonal::from_bell_state(BellState::PHI_PLUS)),
            dense: BellState::PHI_PLUS.density(),
        }
    }

    fn op_strategy(&self) -> BoxedStrategy<Op> {
        prop_oneof![
            (any::<bool>(), 0u8..3).prop_map(|(end, which)| Op::Pauli { end, which }),
            (any::<bool>(), 0.0f64..0.5).prop_map(|(end, p)| Op::Dephase { end, p }),
            (any::<bool>(), 0.0f64..1.0).prop_map(|(end, p)| Op::Depolarize { end, p }),
            (0.0f64..1.0).prop_map(|p| Op::Depolarize2q { p }),
            (any::<bool>(), 0.0f64..1.0).prop_map(|(end, gamma)| Op::Damp { end, gamma }),
            (any::<bool>(), 0.0f64..1.0).prop_map(|(end, u)| Op::MeasureZ { end, u }),
        ]
        .boxed()
    }

    fn apply(&self, model: &mut Frame, system: &mut Dual, op: &Op) -> Result<(), String> {
        match *op {
            Op::Pauli { end, which } => {
                let pauli = match which {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                system.bell.apply_pauli(usize::from(end), pauli);
                system
                    .dense
                    .apply_unitary(&pauli.matrix(), &[usize::from(end)]);
                // A Pauli on either qubit flips the same frame bits.
                model.state = BellState::from_bits(
                    model.state.x ^ (pauli != Pauli::Z),
                    model.state.z ^ (pauli != Pauli::X),
                );
            }
            Op::Dephase { end, p } => {
                system.bell.dephase(usize::from(end), p);
                system
                    .dense
                    .apply_kraus(&qn_quantum::channels::dephasing(p), &[usize::from(end)]);
                model.pure = false;
            }
            Op::Depolarize { end, p } => {
                system.bell.depolarize(usize::from(end), p);
                system
                    .dense
                    .apply_kraus(&qn_quantum::channels::depolarizing(p), &[usize::from(end)]);
                model.pure = false;
            }
            Op::Depolarize2q { p } => {
                system.bell.depolarize_2q(p);
                system
                    .dense
                    .apply_kraus(&qn_quantum::channels::depolarizing_2q(p), &[0, 1]);
                model.pure = false;
            }
            Op::Damp { end, gamma } => {
                system.bell.amplitude_damp(usize::from(end), gamma);
                system.dense.apply_kraus(
                    &qn_quantum::channels::amplitude_damping(gamma),
                    &[usize::from(end)],
                );
                model.pure = false;
            }
            Op::MeasureZ { end, u } => {
                // Guard: both engines debug-assert on projecting onto a
                // ~zero-probability branch; align the sample with the
                // dense probability to stay in-distribution.
                let p1 = system.dense.prob_one(usize::from(end));
                let u = if p1 < 1e-9 {
                    0.999_999
                } else if p1 > 1.0 - 1e-9 {
                    1e-6
                } else {
                    u
                };
                let ob = system.bell.measure_pauli(usize::from(end), Pauli::Z, u);
                let od = system.dense.measure_z(usize::from(end), u);
                if ob != od {
                    return Err(format!(
                        "measurement outcomes diverge: bell {ob}, dense {od}"
                    ));
                }
                model.pure = false;
            }
        }
        Ok(())
    }

    fn invariants(&self, model: &Frame, system: &Dual) -> Result<(), String> {
        if !system.bell.is_bell() {
            return Err("fast path lost the Bell representation".into());
        }
        for b in BellState::ALL {
            let fb = system.bell.fidelity_bell(b);
            let fd = system.dense.fidelity_pure(&b.amplitudes());
            if (fb - fd).abs() > EPS {
                return Err(format!("coeff {b}: bell {fb} vs dense {fd}"));
            }
        }
        for end in 0..2 {
            let pb = system.bell.prob_one(end);
            let pd = system.dense.prob_one(end);
            if (pb - pd).abs() > EPS {
                return Err(format!("prob_one({end}): bell {pb} vs dense {pd}"));
            }
        }
        if (system.bell.trace() - system.dense.trace()).abs() > EPS {
            return Err("trace diverges".into());
        }
        if (system.bell.purity() - system.dense.purity()).abs() > EPS {
            return Err("purity diverges".into());
        }
        if model.pure {
            let f = system.bell.fidelity_bell(model.state);
            if (f - 1.0).abs() > 1e-9 {
                return Err(format!(
                    "noiseless prefix: fidelity {f} to tracked frame {}",
                    model.state
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn bell_diagonal_tracks_dense_and_frame() {
    ModelTest::new("quantum_threeway_pairstate", ThreeWaySpec)
        .cases(96)
        .max_ops(48)
        .run();
}
