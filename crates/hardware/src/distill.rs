//! Entanglement distillation (paper §4.3).
//!
//! The paper positions the QNP as a building block: a distillation
//! service consumes two pairs delivered between the same two nodes and
//! produces — with finite probability — one pair of higher fidelity.
//! This module implements the physical primitive: the BBPSSW-style
//! bilateral-CNOT + parity-check circuit, built from the same noisy
//! gates and readouts the entanglement swap uses.
//!
//! Circuit, for two pairs both spanning nodes (X, Y):
//!
//! 1. Rotate both pairs into the Φ⁺ frame (perfect local Paulis per
//!    Table 1).
//! 2. At each node: CNOT from the kept pair's qubit onto the sacrificed
//!    pair's qubit (noisy two-qubit gate).
//! 3. Measure both sacrificed qubits in Z (noisy readout).
//! 4. Keep the surviving pair iff the announced outcomes agree.
//!
//! For Werner inputs of fidelity `F` with ideal operations the textbook
//! results hold (validated in tests):
//!
//! * success probability `p = F² + 2F(1−F)/3 + 5((1−F)/3)²`
//! * output fidelity `F' = (F² + ((1−F)/3)²) / p`, which exceeds `F`
//!   whenever `F > 1/2`.

use crate::pairs::{PairId, PairStore, SwapNoise};
use qn_quantum::bell::BellState;
use qn_quantum::channels;
use qn_quantum::gates;
use qn_sim::{NodeId, SimRng, SimTime};

/// Outcome of one distillation attempt.
#[derive(Clone, Copy, Debug)]
pub struct DistillResult {
    /// Whether the parity check (announced outcomes) succeeded.
    pub success: bool,
    /// The surviving pair (degraded rather than improved on failure).
    pub kept: PairId,
    /// The qubits freed by measuring the sacrificed pair.
    pub freed: [(NodeId, crate::device::QubitId); 2],
}

/// Textbook BBPSSW success probability for Werner inputs.
pub fn bbpssw_success_prob(f: f64) -> f64 {
    let g = (1.0 - f) / 3.0;
    f * f + 2.0 * f * g + 5.0 * g * g
}

/// Textbook BBPSSW output fidelity for Werner inputs.
pub fn bbpssw_output_fidelity(f: f64) -> f64 {
    let g = (1.0 - f) / 3.0;
    (f * f + g * g) / bbpssw_success_prob(f)
}

impl PairStore {
    /// Distill `keep` using `sacrifice`; both pairs must span the same
    /// two nodes. Performed at time `now` with the given gate/readout
    /// noise. On failure the kept pair is left in the store (degraded by
    /// the circuit); the caller decides whether to retry or discard.
    ///
    /// Returns the announced parity-check verdict. The sacrificed pair is
    /// always consumed (measured out) and removed from the store.
    pub fn distill(
        &mut self,
        keep: PairId,
        sacrifice: PairId,
        now: SimTime,
        noise: &SwapNoise,
        rng: &mut SimRng,
    ) -> DistillResult {
        self.advance(keep, now);
        self.advance(sacrifice, now);

        // Rotate both pairs into the Φ+ frame via perfect local Paulis.
        for id in [keep, sacrifice] {
            let pair = self.get(id).expect("distill on dead pair");
            let announced = pair.announced;
            let node0 = pair.ends()[0].node;
            let correction = announced.correction_to(BellState::PHI_PLUS);
            self.apply_pauli(id, node0, qn_quantum::Pauli::I, now); // advance only
            if correction != qn_quantum::Pauli::I {
                // Apply on end 1 per the bell-state convention.
                let node1 = self.get(id).expect("pair").ends()[1].node;
                self.apply_pauli(id, node1, correction, now);
            }
        }

        let a = self.get(keep).expect("keep pair");
        let b = self.get(sacrifice).expect("sacrifice pair");
        let (na, nb) = (a.ends()[0].node, a.ends()[1].node);
        assert!(
            b.end_at(na).is_some() && b.end_at(nb).is_some(),
            "distillation requires both pairs between the same nodes"
        );
        // Orientation of the sacrificed pair relative to the kept one.
        let b0_at_na = b.ends()[0].node == na;
        // Snapshot the fast representations (they are `Copy`) before
        // taking the table cache borrow.
        let bell_inputs = match (a.state().as_bell(), b.state().as_bell()) {
            (Some(x), Some(y)) => Some((*x, *y)),
            _ => None,
        };

        // Fast path: one conditional-map table contraction instead of
        // the 16×16 joint-register circuit.
        let fast = bell_inputs.and_then(|(x, y)| {
            self.distill_table(noise.p_two_qubit, b0_at_na).map(|t| {
                let u1 = rng.f64();
                let u2 = rng.f64();
                t.apply(&x, &y, u1, u2)
            })
        });

        let (m_na, m_nb, post) = match fast {
            Some((m_na, m_nb, bd)) => (m_na, m_nb, qn_quantum::PairState::Bell(bd)),
            None => {
                let a = self.get(keep).expect("keep pair");
                let b = self.get(sacrifice).expect("sacrifice pair");
                // Joint register: [a0, a1, b0, b1]; align so CNOTs act
                // locally.
                let mut joint = a.state().to_density().tensor(&b.state().to_density());
                let (b_at_na, b_at_nb) = if b0_at_na { (2, 3) } else { (3, 2) };

                // Bilateral CNOTs with two-qubit gate noise.
                for (ctrl, tgt) in [(0usize, b_at_na), (1usize, b_at_nb)] {
                    joint.apply_unitary(&gates::cnot(), &[ctrl, tgt]);
                    if noise.p_two_qubit > 0.0 {
                        joint.apply_kraus(
                            &channels::depolarizing_2q(noise.p_two_qubit),
                            &[ctrl, tgt],
                        );
                    }
                }
                // Measure the sacrificed qubits in Z.
                let m_na = joint.measure_z(b_at_na, rng.f64());
                let m_nb = joint.measure_z(b_at_nb, rng.f64());
                // The kept pair's post-circuit state.
                let post = joint.partial_trace_keep(&[0, 1]);
                let post = qn_quantum::PairState::from_density(post, self.rep());
                (m_na, m_nb, post)
            }
        };
        let r_na = flip_with_readout(m_na, noise, rng);
        let r_nb = flip_with_readout(m_nb, noise, rng);
        let success = r_na == r_nb;

        let freed = self.discard(sacrifice).expect("sacrificed pair existed");
        self.replace_pair_state(keep, post, BellState::PHI_PLUS);

        DistillResult {
            success,
            kept: keep,
            freed,
        }
    }
}

fn flip_with_readout(outcome: bool, noise: &SwapNoise, rng: &mut SimRng) -> bool {
    let fid = if outcome {
        noise.readout.fidelity1
    } else {
        noise.readout.fidelity0
    };
    if rng.bernoulli(1.0 - fid) {
        !outcome
    } else {
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::QubitId;
    use crate::params::{HardwareParams, ReadoutSpec};
    use qn_quantum::formulas::werner_param;
    use qn_quantum::DensityMatrix;

    fn perfect_noise() -> SwapNoise {
        SwapNoise {
            p_two_qubit: 0.0,
            p_single: 0.0,
            readout: ReadoutSpec {
                fidelity0: 1.0,
                fidelity1: 1.0,
                duration: 0.0,
            },
        }
    }

    fn werner(f: f64) -> DensityMatrix {
        let w = werner_param(f);
        let phi = BellState::PHI_PLUS.density();
        let mixed = DensityMatrix::maximally_mixed(2);
        DensityMatrix::from_matrix(&phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w))
    }

    fn mk(store: &mut PairStore, f: f64, announced: BellState, q: u32) -> PairId {
        // Build the Werner state in the announced frame.
        let mut state = werner(f);
        let corr = BellState::PHI_PLUS.correction_to(announced);
        if corr != qn_quantum::Pauli::I {
            state.apply_unitary(&corr.matrix(), &[1]);
        }
        store.create(
            SimTime::ZERO,
            state,
            announced,
            [
                (NodeId(0), QubitId(q), f64::INFINITY, f64::INFINITY),
                (NodeId(1), QubitId(q), f64::INFINITY, f64::INFINITY),
            ],
        )
    }

    #[test]
    fn textbook_formulas_sane() {
        // Distillation gains only above F = 1/2; check the fixed points.
        assert!((bbpssw_output_fidelity(1.0) - 1.0).abs() < 1e-12);
        for f in [0.6, 0.7, 0.8, 0.9] {
            assert!(bbpssw_output_fidelity(f) > f, "gain at {f}");
            let p = bbpssw_success_prob(f);
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn ideal_distillation_matches_textbook_statistics() {
        let f_in = 0.8;
        let noise = perfect_noise();
        let mut rng = SimRng::from_seed(7);
        let n = 400;
        let mut successes = 0usize;
        let mut fid_sum = 0.0;
        for _ in 0..n {
            let mut store = PairStore::new();
            let a = mk(&mut store, f_in, BellState::PHI_PLUS, 0);
            let b = mk(&mut store, f_in, BellState::PHI_PLUS, 1);
            let res = store.distill(a, b, SimTime::ZERO, &noise, &mut rng);
            if res.success {
                successes += 1;
                fid_sum += store.fidelity_to(res.kept, BellState::PHI_PLUS, SimTime::ZERO);
            }
        }
        let p_meas = successes as f64 / n as f64;
        let f_meas = fid_sum / successes as f64;
        let p_th = bbpssw_success_prob(f_in);
        let f_th = bbpssw_output_fidelity(f_in);
        assert!(
            (p_meas - p_th).abs() < 0.06,
            "success prob {p_meas} vs textbook {p_th}"
        );
        assert!(
            (f_meas - f_th).abs() < 0.02,
            "output fidelity {f_meas} vs textbook {f_th}"
        );
        assert!(f_meas > f_in, "distillation must gain fidelity");
    }

    #[test]
    fn distillation_rotates_arbitrary_announced_frames() {
        // Pairs delivered as Ψ± must distill just as well: the frame
        // rotation is part of the circuit.
        let noise = perfect_noise();
        let mut rng = SimRng::from_seed(11);
        let mut ok = 0;
        let n = 120;
        for i in 0..n {
            let mut store = PairStore::new();
            let a = mk(&mut store, 0.85, BellState::from_index(i % 4), 0);
            let b = mk(&mut store, 0.85, BellState::from_index((i / 4) % 4), 1);
            let res = store.distill(a, b, SimTime::ZERO, &noise, &mut rng);
            if res.success {
                let f = store.fidelity_to(res.kept, BellState::PHI_PLUS, SimTime::ZERO);
                if f > 0.85 {
                    ok += 1;
                }
            }
        }
        assert!(ok > n / 2, "most successful rounds must gain: {ok}/{n}");
    }

    #[test]
    fn noisy_gates_cap_the_gain() {
        // With the paper's 0.998 two-qubit gates distillation still gains
        // at F=0.8, but less than the textbook amount.
        let noise = SwapNoise::from_params(&HardwareParams::simulation());
        let mut rng = SimRng::from_seed(13);
        let n = 300;
        let mut successes = 0usize;
        let mut fid_sum = 0.0;
        for _ in 0..n {
            let mut store = PairStore::new();
            let a = mk(&mut store, 0.8, BellState::PHI_PLUS, 0);
            let b = mk(&mut store, 0.8, BellState::PHI_PLUS, 1);
            let res = store.distill(a, b, SimTime::ZERO, &noise, &mut rng);
            if res.success {
                successes += 1;
                fid_sum += store.fidelity_to(res.kept, BellState::PHI_PLUS, SimTime::ZERO);
            }
        }
        let f_meas = fid_sum / successes as f64;
        assert!(f_meas > 0.8, "still gains with noisy gates: {f_meas}");
        assert!(
            f_meas < bbpssw_output_fidelity(0.8) + 0.01,
            "cannot beat the ideal circuit"
        );
    }

    #[test]
    fn sacrificed_pair_is_removed() {
        let noise = perfect_noise();
        let mut rng = SimRng::from_seed(17);
        let mut store = PairStore::new();
        let a = mk(&mut store, 0.9, BellState::PHI_PLUS, 0);
        let b = mk(&mut store, 0.9, BellState::PHI_PLUS, 1);
        let res = store.distill(a, b, SimTime::ZERO, &noise, &mut rng);
        assert!(store.contains(res.kept));
        assert!(!store.contains(b));
        assert_eq!(res.freed[0].0, NodeId(0));
        assert_eq!(res.freed[1].0, NodeId(1));
    }
}
