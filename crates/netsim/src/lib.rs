//! # qn-netsim — the full-network simulation runtime
//!
//! Composes every layer of the reproduction — `qn-sim` (events),
//! `qn-quantum` (states), `qn-hardware` (devices and heralding),
//! `qn-link` (link layer), `qn-net` (the QNP) and `qn-routing`
//! (controller + signalling) — into a runnable network simulation,
//! playing the role NetSquid scenario scripts play in the paper.
//!
//! * [`runtime`] — the discrete-event model: classical channels with
//!   delay injection, geometric fast-forward link generation, timed noisy
//!   swaps/measurements, cutoff timers, near-term storage moves;
//! * [`build`] — the [`build::NetworkBuilder`] / [`build::NetSim`]
//!   façade: open circuits, submit requests, run, read metrics;
//! * [`app`] — the application harness with oracle-annotated deliveries.
//!
//! ## Example: one pair over the Fig 7 dumbbell
//!
//! ```
//! use qn_hardware::params::{FibreParams, HardwareParams};
//! use qn_netsim::build::NetworkBuilder;
//! use qn_net::{Address, Demand, RequestId, RequestType, UserRequest};
//! use qn_routing::{dumbbell, CutoffPolicy};
//! use qn_sim::{SimTime, SimDuration};
//!
//! let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
//! let mut sim = NetworkBuilder::new(topology).seed(7).build();
//! let vc = sim.open_circuit(d.a0, d.b0, 0.8, CutoffPolicy::short()).unwrap();
//! sim.submit_at(SimTime::ZERO, vc, UserRequest {
//!     id: RequestId(1),
//!     head: Address { node: d.a0, identifier: 0 },
//!     tail: Address { node: d.b0, identifier: 0 },
//!     min_fidelity: 0.8,
//!     demand: Demand::Pairs { n: 1, deadline: None },
//!     request_type: RequestType::Keep,
//!     final_state: None,
//! });
//! sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
//! assert!(sim.app().completed.len() == 1, "request must complete");
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod build;
pub mod classical;
pub mod estimation;
pub mod faults;
pub mod runtime;
pub mod shard;

pub use app::{AppHarness, DeliveryRecord, Payload};
pub use build::{NetSim, NetworkBuilder};
pub use classical::{BatchId, BatchOpen, ClassicalFaults, ClassicalPlane, ClassicalStats};
pub use estimation::FidelityEstimator;
pub use faults::{ComponentEvent, FaultPlan};
pub use runtime::{CheckpointPolicy, Ev, NetworkModel, RetransmitConfig, RuntimeConfig};
pub use shard::ShardPlan;

// The qn_exec sweep runner builds and runs whole simulations on worker
// threads, so the façade types must stay `Send`. Checked at compile
// time: introducing an `Rc`/`RefCell` anywhere in the stack breaks this
// build, not a bench run three layers up.
#[allow(dead_code)]
fn _netsim_types_are_send() {
    fn is_send<T: Send>() {}
    is_send::<NetSim>();
    is_send::<NetworkBuilder>();
    is_send::<NetworkModel>();
    is_send::<AppHarness>();
}
