//! Fidelity test rounds (paper §3.4 "Quality of service management" and
//! §4.1 "Fidelity test rounds").
//!
//! "It is physically impossible for the protocol to peek or measure the
//! delivered pairs to evaluate their fidelity. However, we need a
//! mechanism to provide some confidence that the states delivered to the
//! application are above the fidelity threshold. … the method relies on
//! creating a number of pairs as test rounds which are then measured
//! (and thus consumed). The statistics of the measurement outcomes can
//! be used to estimate the fidelity of the non-test pairs."
//!
//! For a target Bell state `B(x,z)` the fidelity decomposes into the
//! three two-qubit Pauli correlators:
//!
//! ```text
//! F = ( 1 + s_X·⟨XX⟩ + s_Y·⟨YY⟩ + s_Z·⟨ZZ⟩ ) / 4
//!     s_Z = (−1)^x,  s_X = (−1)^z,  s_Y = −(−1)^(x⊕z)
//! ```
//!
//! so measuring batches of test pairs in the X, Y and Z bases (MEASURE
//! requests) and comparing the outcomes at the two ends estimates `F`
//! without any oracle access.

use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;

/// Accumulates test-round outcomes and produces a fidelity estimate.
#[derive(Clone, Debug, Default)]
pub struct FidelityEstimator {
    /// Per-basis (agreements, rounds): indexed X=0, Y=1, Z=2.
    counts: [(u64, u64); 3],
}

fn basis_index(basis: Pauli) -> usize {
    match basis {
        Pauli::X => 0,
        Pauli::Y => 1,
        Pauli::Z => 2,
        Pauli::I => panic!("identity is not a measurement basis"),
    }
}

/// The expected correlator sign of `basis` on the Bell state `state`.
pub fn correlator_sign(state: BellState, basis: Pauli) -> f64 {
    let (x, z) = (state.x, state.z);
    let sign = match basis {
        Pauli::Z => !x,
        Pauli::X => !z,
        Pauli::Y => x == z, // −(−1)^(x⊕z) > 0 iff x⊕z = 1 … inverted below
        Pauli::I => panic!("identity is not a measurement basis"),
    };
    match basis {
        Pauli::Y => {
            if sign {
                -1.0
            } else {
                1.0
            }
        }
        _ => {
            if sign {
                1.0
            } else {
                -1.0
            }
        }
    }
}

impl FidelityEstimator {
    /// Empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one test round: both ends' outcomes in the same basis,
    /// with the Bell state the network claims the pair was in. Outcomes
    /// are first rotated into the Φ⁺ frame using the claimed state so
    /// that rounds with different claimed states can be pooled.
    pub fn record(&mut self, basis: Pauli, outcome_a: bool, outcome_b: bool, claimed: BellState) {
        let idx = basis_index(basis);
        // In the claimed frame, the expected correlator sign tells us
        // whether agreement or disagreement is the "good" event.
        let expect_agree = correlator_sign(claimed, basis) > 0.0;
        let agree = outcome_a == outcome_b;
        let good = agree == expect_agree;
        self.counts[idx].1 += 1;
        if good {
            self.counts[idx].0 += 1;
        }
    }

    /// Rounds recorded per basis (X, Y, Z).
    pub fn rounds(&self) -> [u64; 3] {
        [self.counts[0].1, self.counts[1].1, self.counts[2].1]
    }

    /// The estimated correlator magnitude for a basis: `2·p_good − 1`.
    pub fn correlator(&self, basis: Pauli) -> Option<f64> {
        let (good, total) = self.counts[basis_index(basis)];
        if total == 0 {
            None
        } else {
            Some(2.0 * good as f64 / total as f64 - 1.0)
        }
    }

    /// The fidelity estimate; requires at least one round in each basis.
    pub fn estimate(&self) -> Option<f64> {
        let ex = self.correlator(Pauli::X)?;
        let ey = self.correlator(Pauli::Y)?;
        let ez = self.correlator(Pauli::Z)?;
        Some(((1.0 + ex + ey + ez) / 4.0).clamp(0.0, 1.0))
    }

    /// Standard error of the estimate (binomial, independent bases).
    pub fn std_err(&self) -> Option<f64> {
        let mut var = 0.0;
        for (good, total) in self.counts {
            if total == 0 {
                return None;
            }
            let p = good as f64 / total as f64;
            // Var(2p̂−1) = 4 p(1−p)/n; the estimate averages 3 correlators /4.
            var += 4.0 * p * (1.0 - p) / total as f64 / 16.0;
        }
        Some(var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_quantum::measure::measure_pauli;
    use qn_quantum::DensityMatrix;
    use qn_sim::SimRng;

    #[test]
    fn correlator_signs_match_quantum_mechanics() {
        // Compute ⟨B|σ⊗σ|B⟩ with the density-matrix engine and compare.
        for state in BellState::ALL {
            for basis in [Pauli::X, Pauli::Y, Pauli::Z] {
                let rho = state.density();
                let op = basis.matrix().kron(&basis.matrix());
                let expectation = rho.expectation(&op);
                let sign = correlator_sign(state, basis);
                assert!(
                    (expectation - sign).abs() < 1e-9,
                    "{state} {basis:?}: qm {expectation} vs sign {sign}"
                );
            }
        }
    }

    /// Sample test rounds from Werner states of known fidelity and check
    /// the estimator converges to it.
    #[test]
    fn estimator_recovers_werner_fidelity() {
        let f_true = 0.87;
        let w = qn_quantum::formulas::werner_param(f_true);
        let phi = BellState::PHI_PLUS.density();
        let mixed = DensityMatrix::maximally_mixed(2);
        let state =
            DensityMatrix::from_matrix(&phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w));
        let mut rng = SimRng::from_seed(5);
        let mut est = FidelityEstimator::new();
        for i in 0..6000 {
            let basis = [Pauli::X, Pauli::Y, Pauli::Z][i % 3];
            let mut rho = state.clone();
            let a = measure_pauli(&mut rho, 0, basis, rng.f64());
            let b = measure_pauli(&mut rho, 1, basis, rng.f64());
            est.record(basis, a, b, BellState::PHI_PLUS);
        }
        let f_hat = est.estimate().unwrap();
        let se = est.std_err().unwrap();
        assert!(
            (f_hat - f_true).abs() < 4.0 * se + 0.01,
            "estimate {f_hat} ± {se} vs true {f_true}"
        );
    }

    #[test]
    fn pooling_across_claimed_frames_works() {
        // Rounds on Ψ− pairs pool with rounds on Φ+ pairs when the
        // claimed state is supplied.
        let mut rng = SimRng::from_seed(9);
        let mut est = FidelityEstimator::new();
        for i in 0..3000 {
            let claimed = BellState::from_index(i % 4);
            let basis = [Pauli::X, Pauli::Y, Pauli::Z][i % 3];
            let mut rho = claimed.density();
            let a = measure_pauli(&mut rho, 0, basis, rng.f64());
            let b = measure_pauli(&mut rho, 1, basis, rng.f64());
            est.record(basis, a, b, claimed);
        }
        let f_hat = est.estimate().unwrap();
        assert!(
            (f_hat - 1.0).abs() < 1e-9,
            "perfect pairs must estimate to 1: {f_hat}"
        );
    }

    #[test]
    fn needs_all_three_bases() {
        let mut est = FidelityEstimator::new();
        est.record(Pauli::Z, false, false, BellState::PHI_PLUS);
        assert_eq!(est.estimate(), None);
        est.record(Pauli::X, false, false, BellState::PHI_PLUS);
        est.record(Pauli::Y, false, true, BellState::PHI_PLUS);
        assert!(est.estimate().is_some());
        assert_eq!(est.rounds(), [1, 1, 1]);
    }
}
