//! The link layer protocol state machine.
//!
//! One [`LinkProtocol`] instance manages entanglement generation over one
//! physical link, playing the role of the link layer protocol of Ref [19]
//! (Dahlberg et al., SIGCOMM'19) that the QNP builds on. In the real
//! system the two endpoint processors run a distributed-queue protocol to
//! agree on what to generate; their decisions are tightly synchronised by
//! design, so the simulation models the agreed schedule as a single state
//! machine per link (documented substitution — the protocol properties the
//! QNP relies on, §3.5 (i)–(iv), are all preserved).
//!
//! The machine is **sans-IO**: it never touches the event queue or the
//! quantum state. The runtime asks [`LinkProtocol::next_action`] what to
//! generate, runs the physical process (sampling the geometric attempt
//! count), and feeds back [`LinkProtocol::on_generation_complete`] /
//! [`LinkProtocol::on_generation_aborted`]. This keeps every scheduling
//! rule unit-testable without a simulator.

use crate::scheduler::TimeShareScheduler;
use crate::service::{EntanglementId, LinkLabel, LinkPair, LinkRequest, PairDemand, RejectReason};
use qn_hardware::heralding::LinkPhysics;
use qn_quantum::bell::BellState;
use qn_sim::{NodeId, SimDuration};
use std::collections::BTreeMap;

/// What the runtime should generate next on this link.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GenerateSpec {
    /// The label whose turn it is.
    pub label: LinkLabel,
    /// Bright-state parameter to use (from the label's min fidelity).
    pub alpha: f64,
}

/// Outputs produced by the protocol in response to inputs.
#[derive(Clone, Debug)]
pub enum LinkEvent {
    /// A pair is ready; the runtime must allocate qubits, create the
    /// physical pair, and notify the network layer at both ends.
    PairReady(LinkPair),
    /// A counted request finished delivering all pairs.
    RequestDone(LinkLabel),
    /// A request was rejected at admission.
    Rejected(LinkLabel, RejectReason),
}

#[derive(Clone, Debug)]
struct RequestState {
    alpha: f64,
    goodness: f64,
    remaining: Option<u64>, // None = continuous
}

/// The per-link protocol instance.
pub struct LinkProtocol {
    nodes: (NodeId, NodeId),
    physics: LinkPhysics,
    scheduler: TimeShareScheduler,
    requests: BTreeMap<LinkLabel, RequestState>,
    next_seq: u64,
    /// Label currently being generated for (at most one; a link runs one
    /// midpoint interference process at a time).
    in_flight: Option<LinkLabel>,
    /// Generation paused (component fault: the physical link is down).
    /// Active requests stay queued; admission rejects new ones.
    paused: bool,
}

impl LinkProtocol {
    /// Create the protocol for a link between `nodes` with the given
    /// physics.
    pub fn new(nodes: (NodeId, NodeId), physics: LinkPhysics) -> Self {
        LinkProtocol {
            nodes,
            physics,
            scheduler: TimeShareScheduler::new(),
            requests: BTreeMap::new(),
            next_seq: 0,
            in_flight: None,
            paused: false,
        }
    }

    /// The link's endpoints.
    pub fn nodes(&self) -> (NodeId, NodeId) {
        self.nodes
    }

    /// The link physics (for cutoff/rate computation by callers).
    pub fn physics(&self) -> &LinkPhysics {
        &self.physics
    }

    /// Submit a request. Admission control rejects duplicate labels,
    /// invalid weights and unattainable fidelities (QoS property iv).
    ///
    /// A request submitted while the link is paused (physical outage) is
    /// admitted and held, exactly like requests admitted before the
    /// pause: generation starts when the link resumes. Rejecting it
    /// instead would silently kill the hop for the rest of the circuit's
    /// life — the network layer submits its per-circuit stream once and
    /// has no retry path for a verdict the wire may deliver or drop.
    pub fn submit(&mut self, req: LinkRequest) -> Vec<LinkEvent> {
        if self.requests.contains_key(&req.label) {
            return vec![LinkEvent::Rejected(req.label, RejectReason::DuplicateLabel)];
        }
        if !(req.weight.is_finite() && req.weight > 0.0) {
            return vec![LinkEvent::Rejected(req.label, RejectReason::InvalidWeight)];
        }
        let Some(alpha) = self.physics.alpha_for_fidelity(req.min_fidelity) else {
            return vec![LinkEvent::Rejected(
                req.label,
                RejectReason::FidelityUnattainable,
            )];
        };
        let remaining = match req.demand {
            PairDemand::Count(n) => Some(n),
            PairDemand::Continuous => None,
        };
        self.requests.insert(
            req.label,
            RequestState {
                alpha,
                goodness: self.physics.fidelity(alpha),
                remaining,
            },
        );
        self.scheduler.add(req.label, req.weight);
        Vec::new()
    }

    /// Stop a request (COMPLETE from the network layer). Any in-flight
    /// generation for it is logically abandoned — the runtime must cancel
    /// the pending completion event and report the elapsed time via
    /// [`LinkProtocol::on_generation_aborted`].
    pub fn stop(&mut self, label: LinkLabel) -> bool {
        let existed = self.requests.remove(&label).is_some();
        self.scheduler.remove(label);
        if self.in_flight == Some(label) {
            self.in_flight = None;
        }
        existed
    }

    /// Update a request's scheduling weight (EER renegotiation).
    pub fn set_weight(&mut self, label: LinkLabel, weight: f64) {
        if weight.is_finite() && weight > 0.0 {
            self.scheduler.set_weight(label, weight);
        }
    }

    /// Pause generation (the physical link went down). Queued requests
    /// stay admitted and resume their fair share on [`LinkProtocol::resume`];
    /// the runtime must abort any in-flight generation separately via
    /// [`LinkProtocol::on_generation_aborted`].
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Resume generation after a pause (the link came back up).
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Whether generation is paused (link down).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Active request labels, in label order (diagnostics and fault
    /// handling: the runtime walks these when a component dies).
    pub fn active_labels(&self) -> Vec<LinkLabel> {
        self.requests.keys().copied().collect()
    }

    /// Whether a request with this label is active.
    pub fn has_request(&self, label: LinkLabel) -> bool {
        self.requests.contains_key(&label)
    }

    /// Number of active requests.
    pub fn active_requests(&self) -> usize {
        self.requests.len()
    }

    /// What to generate next, if anything. Idempotent; returns the same
    /// answer until the schedule state changes. `None` while a generation
    /// is in flight or no requests are active.
    pub fn next_action(&self) -> Option<GenerateSpec> {
        if self.paused || self.in_flight.is_some() {
            return None;
        }
        let label = self.scheduler.next()?;
        let state = self.requests.get(&label)?;
        Some(GenerateSpec {
            label,
            alpha: state.alpha,
        })
    }

    /// The runtime accepted the [`GenerateSpec`] and started the physical
    /// process.
    pub fn on_generation_started(&mut self, label: LinkLabel) {
        debug_assert!(self.in_flight.is_none(), "one generation at a time");
        debug_assert!(self.requests.contains_key(&label));
        self.in_flight = Some(label);
    }

    /// Whether a generation is currently in flight.
    pub fn generating(&self) -> Option<LinkLabel> {
        self.in_flight
    }

    /// The physical process heralded success after `attempts` attempts
    /// taking `elapsed`. Returns the delivered pair and any lifecycle
    /// events.
    pub fn on_generation_complete(
        &mut self,
        announced: BellState,
        attempts: u64,
        elapsed: SimDuration,
    ) -> (LinkPair, Vec<LinkEvent>) {
        let label = self
            .in_flight
            .take()
            .expect("completion without in-flight generation");
        self.scheduler.charge(label, elapsed);
        let state = self
            .requests
            .get_mut(&label)
            .expect("completion for unknown request");
        let pair = LinkPair {
            id: EntanglementId {
                node_a: self.nodes.0,
                node_b: self.nodes.1,
                seq: self.next_seq,
            },
            label,
            announced,
            alpha: state.alpha,
            goodness: state.goodness,
            attempts,
        };
        self.next_seq += 1;
        let mut events = vec![LinkEvent::PairReady(pair)];
        if let Some(rem) = &mut state.remaining {
            *rem -= 1;
            if *rem == 0 {
                self.requests.remove(&label);
                self.scheduler.remove(label);
                events.push(LinkEvent::RequestDone(label));
            }
        }
        (pair, events)
    }

    /// The physical process was interrupted (request stopped, qubits
    /// unavailable) after consuming `elapsed` of link time. The elapsed
    /// time is still charged to the label to keep time-sharing fair.
    pub fn on_generation_aborted(&mut self, label: LinkLabel, elapsed: SimDuration) {
        if self.in_flight == Some(label) {
            self.in_flight = None;
        }
        self.scheduler.charge(label, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_hardware::params::{FibreParams, HardwareParams};

    fn proto() -> LinkProtocol {
        LinkProtocol::new(
            (NodeId(0), NodeId(1)),
            LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m()),
        )
    }

    fn req(label: u32, fid: f64, demand: PairDemand, weight: f64) -> LinkRequest {
        LinkRequest {
            label: LinkLabel(label),
            min_fidelity: fid,
            demand,
            weight,
        }
    }

    #[test]
    fn submit_then_generate_then_deliver() {
        let mut p = proto();
        let evs = p.submit(req(1, 0.95, PairDemand::Count(2), 1.0));
        assert!(evs.is_empty());
        let spec = p.next_action().expect("work available");
        assert_eq!(spec.label, LinkLabel(1));
        assert!(spec.alpha > 0.0 && spec.alpha < 0.5);
        p.on_generation_started(spec.label);
        assert!(p.next_action().is_none(), "no concurrent generations");
        let (pair, evs) =
            p.on_generation_complete(BellState::PSI_PLUS, 100, SimDuration::from_millis(1));
        assert_eq!(pair.label, LinkLabel(1));
        assert_eq!(pair.id.seq, 0);
        assert!(pair.goodness >= 0.95);
        assert_eq!(evs.len(), 1);
        // Second pair completes the request.
        let spec = p.next_action().unwrap();
        p.on_generation_started(spec.label);
        let (pair2, evs) =
            p.on_generation_complete(BellState::PSI_MINUS, 50, SimDuration::from_millis(1));
        assert_eq!(pair2.id.seq, 1);
        assert!(matches!(evs[1], LinkEvent::RequestDone(LinkLabel(1))));
        assert!(p.next_action().is_none());
        assert_eq!(p.active_requests(), 0);
    }

    #[test]
    fn continuous_request_never_completes_by_itself() {
        let mut p = proto();
        p.submit(req(1, 0.9, PairDemand::Continuous, 1.0));
        for i in 0..20 {
            let spec = p.next_action().unwrap();
            p.on_generation_started(spec.label);
            let (pair, evs) =
                p.on_generation_complete(BellState::PSI_PLUS, 10, SimDuration::from_millis(1));
            assert_eq!(pair.id.seq, i);
            assert_eq!(evs.len(), 1, "no RequestDone for continuous");
        }
        assert!(p.stop(LinkLabel(1)));
        assert!(p.next_action().is_none());
    }

    #[test]
    fn unattainable_fidelity_rejected() {
        let mut p = proto();
        let evs = p.submit(req(1, 0.9999, PairDemand::Continuous, 1.0));
        assert!(matches!(
            evs[0],
            LinkEvent::Rejected(LinkLabel(1), RejectReason::FidelityUnattainable)
        ));
        assert!(p.next_action().is_none());
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut p = proto();
        p.submit(req(1, 0.9, PairDemand::Continuous, 1.0));
        let evs = p.submit(req(1, 0.8, PairDemand::Continuous, 1.0));
        assert!(matches!(
            evs[0],
            LinkEvent::Rejected(LinkLabel(1), RejectReason::DuplicateLabel)
        ));
    }

    #[test]
    fn invalid_weight_rejected() {
        let mut p = proto();
        let evs = p.submit(req(1, 0.9, PairDemand::Continuous, 0.0));
        assert!(matches!(
            evs[0],
            LinkEvent::Rejected(LinkLabel(1), RejectReason::InvalidWeight)
        ));
        let evs = p.submit(req(2, 0.9, PairDemand::Continuous, f64::NAN));
        assert!(matches!(evs[0], LinkEvent::Rejected(..)));
    }

    #[test]
    fn lower_fidelity_gets_higher_alpha() {
        let mut p = proto();
        p.submit(req(1, 0.95, PairDemand::Continuous, 1.0));
        p.submit(req(2, 0.80, PairDemand::Continuous, 1.0));
        // Drive the scheduler; collect alphas per label.
        let mut alpha = [0.0f64; 3];
        for _ in 0..4 {
            let spec = p.next_action().unwrap();
            alpha[spec.label.0 as usize] = spec.alpha;
            p.on_generation_started(spec.label);
            p.on_generation_complete(BellState::PSI_PLUS, 1, SimDuration::from_millis(1));
        }
        assert!(
            alpha[2] > alpha[1],
            "F=0.8 must use larger alpha than F=0.95 ({} vs {})",
            alpha[2],
            alpha[1]
        );
    }

    #[test]
    fn equal_time_share_regardless_of_fidelity() {
        // Paper §5: "circuits get an equal share of the link's time
        // regardless of fidelity". The F=0.8 label produces pairs faster;
        // after many slots both labels' charged time must be close.
        let mut p = proto();
        p.submit(req(1, 0.95, PairDemand::Continuous, 1.0));
        p.submit(req(2, 0.80, PairDemand::Continuous, 1.0));
        let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut produced = [0u32; 3];
        for _ in 0..600 {
            let spec = p.next_action().unwrap();
            p.on_generation_started(spec.label);
            let time = physics.expected_pair_time(spec.alpha);
            let (_, _) = p.on_generation_complete(BellState::PSI_PLUS, 1, time);
            produced[spec.label.0 as usize] += 1;
        }
        assert!(
            produced[2] > produced[1] * 2,
            "low-fidelity circuit must produce more pairs: {produced:?}"
        );
    }

    #[test]
    fn stop_mid_flight_clears_in_flight() {
        let mut p = proto();
        p.submit(req(1, 0.9, PairDemand::Continuous, 1.0));
        let spec = p.next_action().unwrap();
        p.on_generation_started(spec.label);
        assert_eq!(p.generating(), Some(LinkLabel(1)));
        assert!(p.stop(LinkLabel(1)));
        assert_eq!(p.generating(), None);
        assert!(p.next_action().is_none());
    }

    #[test]
    fn pause_halts_generation_and_queues_admission() {
        let mut p = proto();
        p.submit(req(1, 0.9, PairDemand::Count(2), 1.0));
        p.pause();
        assert!(p.is_paused());
        assert!(p.next_action().is_none(), "no work while paused");
        // A request submitted during the outage is admitted and held —
        // losing it would leave the hop permanently idle, since the
        // network layer submits its per-circuit stream exactly once.
        let evs = p.submit(req(2, 0.9, PairDemand::Continuous, 1.0));
        assert!(evs.is_empty(), "admission during a pause: {evs:?}");
        assert_eq!(p.active_labels(), vec![LinkLabel(1), LinkLabel(2)]);
        assert!(p.next_action().is_none(), "still no work while paused");
        // Resuming restores both requests' turns.
        p.resume();
        assert!(!p.is_paused());
        assert_eq!(p.next_action().unwrap().label, LinkLabel(1));
    }

    #[test]
    fn abort_charges_time() {
        let mut p = proto();
        p.submit(req(1, 0.9, PairDemand::Continuous, 1.0));
        p.submit(req(2, 0.9, PairDemand::Continuous, 1.0));
        let spec = p.next_action().unwrap();
        assert_eq!(spec.label, LinkLabel(1));
        p.on_generation_started(spec.label);
        p.on_generation_aborted(LinkLabel(1), SimDuration::from_millis(50));
        // Label 2 now has less charged time and must go next.
        assert_eq!(p.next_action().unwrap().label, LinkLabel(2));
    }
}
