//! # qn-routing — routing controller and signalling protocol
//!
//! The two supporting protocols the QNP requires (paper §3.3):
//!
//! * [`controller`] — the central routing controller: shortest paths and
//!   per-link fidelity budgets computed by inverting the worst-case
//!   decoherence chain ("every link-pair is swapped just before its
//!   cutoff timer pops", §5);
//! * [`budget`] — the worst-case fidelity math and the two cutoff
//!   policies of the evaluation (1.5 % fidelity-loss and the 0.85
//!   generation-probability quantile), each validated against the
//!   density-matrix engine;
//! * [`signalling`] — source-routed circuit installation: MPLS-style
//!   link-label allocation and the per-node routing entries of §4.1;
//! * [`topology`] — the network graph, including the paper's Fig 7
//!   dumbbell and linear-chain presets;
//! * [`wire`] — the byte-level encoding of the install/teardown
//!   signalling messages (shared registry with [`qn_net::wire`]).

#![warn(missing_docs)]

pub mod budget;
pub mod controller;
pub mod signalling;
pub mod topology;
pub mod wire;

pub use budget::CutoffPolicy;
pub use controller::{CircuitPlan, Controller, PlanError};
pub use signalling::{InstalledCircuit, Signaller};
pub use topology::{
    chain, dumbbell, grid, ring, wide_dumbbell, Dumbbell, LinkSpec, Topology, WideDumbbell,
};
pub use wire::{SignalMessage, SignalMessageView};
