//! Statistics utilities used by scenarios and benchmark harnesses:
//! online moments, retained-sample percentiles/CDFs, and windowed rates.

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Retained samples supporting exact percentiles and CDF extraction.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Add many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        self.values.extend(xs);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations are recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation; `None` when
    /// empty.
    pub fn percentile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Median, `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(0.5)
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Empirical CDF evaluated at `n` evenly spaced fractions; returns
    /// `(value, fraction ≤ value)` pairs suitable for plotting Fig 5.
    pub fn cdf_points(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (1..=n)
            .map(|i| {
                let q = i as f64 / n as f64;
                let idx =
                    ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
                (self.values[idx - 1], q)
            })
            .collect()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.values.partition_point(|v| *v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// Borrow the raw values (unsorted order not guaranteed).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Counts discrete deliveries over simulated time and reports a rate.
#[derive(Clone, Debug)]
pub struct RateMeter {
    start: SimTime,
    count: u64,
    window_start: Option<SimTime>,
}

impl RateMeter {
    /// Start metering at `start`; events before an explicit
    /// [`RateMeter::open_window`] still count toward the whole-run rate.
    pub fn new(start: SimTime) -> Self {
        RateMeter {
            start,
            count: 0,
            window_start: None,
        }
    }

    /// Begin the measurement window (e.g. after warm-up). Resets the count.
    pub fn open_window(&mut self, at: SimTime) {
        self.window_start = Some(at);
        self.count = 0;
    }

    /// Record one delivery.
    pub fn record(&mut self) {
        self.count += 1;
    }

    /// Number of deliveries since the window opened (or since `start`).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Deliveries per simulated second between window start and `now`.
    pub fn rate_per_sec(&self, now: SimTime) -> f64 {
        let begin = self.window_start.unwrap_or(self.start);
        let span: SimDuration = now.since(begin);
        let secs = span.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic dataset is ~2.138.
        assert!((s.std_dev() - 2.13809).abs() < 1e-4);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_concat() {
        let xs: Vec<f64> = (0..50).map(|i| (i * i) as f64 * 0.1).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|x| whole.push(*x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..20].iter().for_each(|x| a.push(*x));
        xs[20..].iter().for_each(|x| b.push(*x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Samples::new();
        s.extend([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), Some(10.0));
        assert_eq!(s.percentile(1.0), Some(40.0));
        assert_eq!(s.median(), Some(25.0));
        assert_eq!(s.percentile(1.0 / 3.0), Some(20.0));
    }

    #[test]
    fn empty_samples_have_no_percentile() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), None);
        assert!(s.cdf_points(10).is_empty());
    }

    #[test]
    fn cdf_points_monotone_and_complete() {
        let mut s = Samples::new();
        s.extend((1..=100).map(|i| i as f64));
        let pts = s.cdf_points(20);
        assert_eq!(pts.len(), 20);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn fraction_below() {
        let mut s = Samples::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.fraction_below(0.5), 0.0);
        assert_eq!(s.fraction_below(2.0), 0.5);
        assert_eq!(s.fraction_below(10.0), 1.0);
    }

    #[test]
    fn rate_meter_window() {
        let t0 = SimTime::ZERO;
        let mut m = RateMeter::new(t0);
        m.record();
        m.record();
        let t1 = t0 + SimDuration::from_secs(2);
        assert!((m.rate_per_sec(t1) - 1.0).abs() < 1e-12);
        m.open_window(t1);
        assert_eq!(m.count(), 0);
        for _ in 0..6 {
            m.record();
        }
        let t2 = t1 + SimDuration::from_secs(3);
        assert!((m.rate_per_sec(t2) - 2.0).abs() < 1e-12);
    }
}
