//! Resilience scenarios: circuit teardown mid-flight, message jitter,
//! and the faulty classical plane — the paper's §4.1 "Classical
//! communication and link reliability" behaviours, plus what happens
//! when that reliability assumption is *broken* (drop / duplication /
//! reordering / corruption sweeps on chain and widened-dumbbell
//! topologies).

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, AppEvent, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_netsim::ClassicalFaults;
use qn_routing::{chain, dumbbell, wide_dumbbell, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

fn keep(id: u64, head: qn_sim::NodeId, tail: qn_sim::NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

#[test]
fn teardown_mid_flight_aborts_cleanly() {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(81).build();
    let v1 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let v2 = sim
        .open_circuit(d.a1, d.b1, 0.85, CutoffPolicy::short())
        .unwrap();
    // A huge request on v1 that cannot complete before the teardown, and
    // a normal one on v2 that must be unaffected.
    sim.submit_at(SimTime::ZERO, v1, keep(1, d.a0, d.b0, 0.85, 1_000_000));
    sim.submit_at(SimTime::ZERO, v2, keep(1, d.a1, d.b1, 0.85, 5));
    sim.close_circuit_at(SimTime::ZERO + SimDuration::from_millis(200), v1);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

    let app = sim.app();
    // v1's application was told the circuit went down.
    assert!(
        app.events
            .iter()
            .any(|(_, _, ev)| matches!(ev, AppEvent::CircuitDown(c) if *c == v1)),
        "CircuitDown notification missing"
    );
    // v2 completed untouched.
    assert!(app.completed.contains_key(&(v2, RequestId(1))));
    assert_eq!(
        app.confirmed_deliveries(v2, d.a1, SimTime::ZERO, SimTime::MAX),
        5
    );
    // No quantum memory leaked: pairs of the torn-down circuit were
    // released (cutoffs + teardown discards drain the rest).
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    assert_eq!(sim.live_pairs(), 0, "pairs leaked after teardown");
}

#[test]
fn teardown_before_any_request_is_a_noop_for_others() {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(82).build();
    let v1 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let v2 = sim
        .open_circuit(d.a0, d.b1, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.close_circuit_at(SimTime::ZERO, v1);
    sim.submit_at(
        SimTime::ZERO + SimDuration::from_millis(1),
        v2,
        keep(1, d.a0, d.b1, 0.85, 3),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    assert!(sim.app().completed.contains_key(&(v2, RequestId(1))));
}

#[test]
fn jitter_does_not_break_the_protocol() {
    // 2 ms of uniform per-message jitter: the reliable in-order transport
    // must keep the protocol fully functional (the paper's reliance on
    // TCP-like semantics).
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(83)
        .message_jitter(SimDuration::from_millis(2))
        .build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    assert!(app.completed.contains_key(&(vc, RequestId(1))));
    assert_eq!(
        app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX),
        6
    );
    // Fidelity still respects the budget (jitter only delays bookkeeping).
    let f = app.mean_fidelity(vc, d.a0).unwrap();
    assert!(f > 0.8, "jittered run fidelity {f}");
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    assert_eq!(sim.live_pairs(), 0);
}

// ---------------------------------------------------------------------
// Faulty classical plane
// ---------------------------------------------------------------------

/// A delivery trajectory fingerprint: (time ps, node, request, sequence)
/// per delivery, in order — byte-for-byte comparable across runs.
fn trajectory(sim: &NetSim) -> Vec<(u64, u32, u64, u64)> {
    sim.app()
        .deliveries
        .iter()
        .map(|d| (d.time.as_ps(), d.node.0, d.request.0, d.sequence))
        .collect()
}

fn chain_run(seed: u64, faults: Option<ClassicalFaults>, n: u64) -> NetSim {
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut b = NetworkBuilder::new(topology).seed(seed);
    if let Some(f) = faults {
        b = b
            .classical_faults(f)
            .track_timeout(SimDuration::from_secs(2));
    }
    let mut sim = b.build();
    let (head, tail) = (NodeId(0), NodeId(3));
    let vc = sim
        .open_circuit(head, tail, 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, head, tail, 0.8, n));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(45));
    sim
}

#[test]
fn faults_off_reproduces_the_fault_free_trajectory_bit_identically() {
    // Plumbing an explicit all-zero fault config (and no track timeout)
    // must not perturb a single RNG draw or delivery time relative to
    // the default build.
    let base = chain_run(4242, None, 6);
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(4242)
        .classical_faults(ClassicalFaults::OFF)
        .build();
    let vc = sim
        .open_circuit(NodeId(0), NodeId(3), 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(3), 0.8, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(45));

    assert_eq!(trajectory(&base), trajectory(&sim));
    assert_eq!(base.events_processed(), sim.events_processed());
    let (s1, s2) = (base.classical_stats(), sim.classical_stats());
    assert_eq!(s1, s2);
    assert_eq!(s1.dropped + s1.duplicated + s1.reordered + s1.corrupted, 0);
    assert_eq!(s1.decode_failures, 0);
    assert_eq!(s1.decode_failures_by_kind, [0; 6]);
    assert_eq!(s1.link_decode_failures_by_kind, [0; 4]);
    // Batching observability: every delivered frame rode in exactly one
    // batch, and the counters are internally consistent.
    assert!(s1.batches > 0, "no batches opened");
    assert!(s1.batches <= s1.delivered);
    assert!(s1.frames_per_batch() >= 1.0);
    assert!(s1.bytes_coalesced <= s1.wire_bytes);
    assert_eq!(
        base.node_stats().total(),
        0,
        "no anomalies on a clean plane"
    );
}

#[test]
fn fault_sweep_on_chain_is_deterministic_and_survivable() {
    let sweep = [
        ClassicalFaults {
            drop: 0.05,
            ..ClassicalFaults::OFF
        },
        ClassicalFaults {
            duplicate: 0.15,
            reorder_window: SimDuration::from_millis(1),
            ..ClassicalFaults::OFF
        },
        ClassicalFaults {
            reorder: 0.25,
            reorder_window: SimDuration::from_millis(2),
            ..ClassicalFaults::OFF
        },
        ClassicalFaults {
            drop: 0.05,
            duplicate: 0.1,
            reorder: 0.15,
            reorder_window: SimDuration::from_millis(1),
            corrupt: 0.05,
        },
    ];
    for (i, faults) in sweep.iter().enumerate() {
        let seed = 9000 + i as u64;
        let a = chain_run(seed, Some(*faults), 8);
        let b = chain_run(seed, Some(*faults), 8);
        // Determinism per seed: identical trajectories, stats, counters.
        assert_eq!(trajectory(&a), trajectory(&b), "faults[{i}] diverged");
        assert_eq!(a.classical_stats(), b.classical_stats());
        assert_eq!(a.node_stats(), b.node_stats());
        assert_eq!(a.events_processed(), b.events_processed());
        // The run survived: no panic, no leaked quantum memory beyond
        // what in-flight chains legitimately hold, and the fault
        // classes actually fired.
        let s = a.classical_stats();
        if faults.drop > 0.0 {
            assert!(s.dropped > 0, "faults[{i}]: no drops sampled");
        }
        if faults.duplicate > 0.0 {
            assert!(s.duplicated > 0, "faults[{i}]: no duplicates sampled");
        }
        if faults.reorder > 0.0 {
            assert!(s.reordered > 0, "faults[{i}]: no reorders sampled");
        }
        if faults.corrupt > 0.0 {
            assert!(s.corrupted > 0, "faults[{i}]: no corruption sampled");
        }
    }
}

#[test]
fn drop_faults_still_deliver_with_track_timeout_reclaiming_qubits() {
    // 5% per-hop drops on a 4-chain: progress must continue because the
    // track-timeout reclaims end-node qubits whose TRACK was lost.
    let sim = chain_run(
        77,
        Some(ClassicalFaults {
            drop: 0.05,
            ..ClassicalFaults::OFF
        }),
        8,
    );
    let delivered = sim.app().confirmed_deliveries(
        qn_net::CircuitId(1),
        NodeId(0),
        SimTime::ZERO,
        SimTime::MAX,
    );
    assert!(
        delivered >= 4,
        "only {delivered}/8 confirmed under 5% drops"
    );
    let stats = sim.classical_stats();
    assert!(stats.dropped > 0);
    // The protocol absorbed the fallout without leaking: anomaly
    // counters account for the losses.
    let ns = sim.node_stats();
    assert!(
        ns.expired_in_transit > 0 || ns.stale_tracks > 0 || ns.stale_expires > 0,
        "drops should surface as absorbed anomalies: {ns:?}"
    );
}

#[test]
fn corruption_is_counted_and_absorbed() {
    // Heavy corruption: some frames fail to decode (counted + dropped),
    // some decode into different valid messages the rules must absorb;
    // the run must neither panic nor wedge the other circuit's traffic.
    // A flipped bit lands in an integer payload most of the time (the
    // message still decodes, just with different content), so
    // undecodable frames are a minority: accumulate over seeds until
    // both outcomes have been observed.
    let mut corrupted = 0;
    let mut failures = 0;
    for seed in 550..560 {
        let sim = chain_run(
            seed,
            Some(ClassicalFaults {
                corrupt: 0.5,
                ..ClassicalFaults::OFF
            }),
            6,
        );
        let s = sim.classical_stats();
        assert!(s.decode_failures <= s.corrupted);
        // Per-kind breakdown: every counted failure lands in exactly one
        // bucket, so the buckets always sum back to the totals.
        assert_eq!(
            s.decode_failures_by_kind.iter().sum::<u64>(),
            s.decode_failures,
            "QNP decode-failure buckets must sum to the total: {s:?}"
        );
        assert_eq!(
            s.link_decode_failures_by_kind.iter().sum::<u64>(),
            s.link_decode_failures,
            "link decode-failure buckets must sum to the total: {s:?}"
        );
        corrupted += s.corrupted;
        failures += s.decode_failures;
    }
    assert!(
        corrupted > 100,
        "too little corruption sampled: {corrupted}"
    );
    assert!(
        failures > 0,
        "bit flips should produce at least one undecodable frame ({corrupted} corrupted)"
    );
    assert!(failures < corrupted, "most single-bit flips still decode");
}

#[test]
fn fault_sweep_on_wide_dumbbell_is_deterministic_per_seed() {
    let faults = ClassicalFaults {
        drop: 0.03,
        duplicate: 0.08,
        reorder: 0.1,
        reorder_window: SimDuration::from_millis(1),
        corrupt: 0.03,
    };
    let run = |seed: u64| {
        let (topology, d) = wide_dumbbell(3, HardwareParams::simulation(), FibreParams::lab_2m());
        let mut sim = NetworkBuilder::new(topology)
            .seed(seed)
            .classical_faults(faults)
            .track_timeout(SimDuration::from_secs(2))
            .build();
        let mut vcs = Vec::new();
        for (i, (a, b)) in d.straight_pairs().into_iter().enumerate() {
            let vc = sim.open_circuit(a, b, 0.8, CutoffPolicy::short()).unwrap();
            sim.submit_at(SimTime::ZERO, vc, keep(i as u64 + 1, a, b, 0.8, 4));
            vcs.push(vc);
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(45));
        sim
    };
    for seed in [31, 32] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(trajectory(&a), trajectory(&b), "seed {seed} diverged");
        assert_eq!(a.classical_stats(), b.classical_stats());
        assert_eq!(a.node_stats(), b.node_stats());
        // All three circuits make progress despite the shared faulty
        // bottleneck.
        let total: u64 = a.app().deliveries.len() as u64;
        assert!(total > 0, "seed {seed}: nothing delivered at all");
    }
    // Different seeds sample different fault patterns.
    assert_ne!(trajectory(&run(31)), trajectory(&run(32)));
}

#[test]
fn shared_bottleneck_traffic_coalesces_into_batches() {
    // Three circuits crossing the same widened-dumbbell bottleneck emit
    // same-tick frames between the same node pairs; the classical plane
    // must coalesce those into shared batch frames and account for the
    // saved deliveries in its counters.
    let (topology, d) = wide_dumbbell(3, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(31).build();
    for (i, (a, b)) in d.straight_pairs().into_iter().enumerate() {
        let vc = sim.open_circuit(a, b, 0.8, CutoffPolicy::short()).unwrap();
        sim.submit_at(SimTime::ZERO, vc, keep(i as u64 + 1, a, b, 0.8, 4));
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(45));
    let s = sim.classical_stats();
    assert!(
        s.batches < s.delivered,
        "no coalescing observed: {} batches for {} frames",
        s.batches,
        s.delivered
    );
    assert!(s.frames_per_batch() > 1.0);
    assert!(
        s.bytes_coalesced > 0 && s.bytes_coalesced < s.wire_bytes,
        "coalesced byte accounting off: {} of {}",
        s.bytes_coalesced,
        s.wire_bytes
    );
    // Nothing was lost to coalescing: all frames still arrived.
    assert_eq!(s.sent, s.delivered);
    assert_eq!(s.decode_failures, 0);
}

#[test]
fn duplication_storm_does_not_double_deliver() {
    // 60% duplication: every confirmation may arrive twice. Bounded
    // requests must still deliver exactly n pairs per end, never more
    // (duplicate TRACK/COMPLETE absorption).
    let sim = chain_run(
        808,
        Some(ClassicalFaults {
            duplicate: 0.6,
            reorder_window: SimDuration::from_millis(1),
            ..ClassicalFaults::OFF
        }),
        5,
    );
    let s = sim.classical_stats();
    assert!(s.duplicated > 0);
    for node in [NodeId(0), NodeId(3)] {
        let confirmed =
            sim.app()
                .confirmed_deliveries(qn_net::CircuitId(1), node, SimTime::ZERO, SimTime::MAX);
        assert!(
            confirmed <= 5,
            "{node}: {confirmed} > 5 confirmed deliveries under duplication"
        );
    }
    let ns = sim.node_stats();
    assert!(
        ns.duplicate_forwards + ns.duplicate_completes + ns.stale_tracks + ns.stale_expires > 0,
        "duplication should surface as absorbed anomalies: {ns:?}"
    );
}

#[test]
fn track_timeout_on_a_clean_plane_is_invisible() {
    // Satellite of the TRACK-retransmission work: arming the per-pair
    // expiry timer must be free on a fault-free plane. Every armed
    // timer is cancelled when its pair resolves (delivery, discard,
    // swap consumption), cancelled events are never dispatched, and
    // arming draws no randomness — so a run with the timeout enabled
    // is bit-identical to one without it: same delivery trajectory,
    // same processed-event count, zero spurious discards.
    let base = chain_run(4242, None, 6);
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(4242)
        .track_timeout(SimDuration::from_secs(2))
        .build();
    let vc = sim
        .open_circuit(NodeId(0), NodeId(3), 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(3), 0.8, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(45));

    assert_eq!(trajectory(&base), trajectory(&sim));
    assert_eq!(
        base.events_processed(),
        sim.events_processed(),
        "a completed pair saw its expiry fire"
    );
    assert_eq!(base.discarded_pairs(), sim.discarded_pairs());
    assert_eq!(base.node_stats(), sim.node_stats());
}

// ---------------------------------------------------------------------
// Signalling on the wire
// ---------------------------------------------------------------------

fn wired_chain_run(seed: u64, faults: Option<ClassicalFaults>, n: u64) -> NetSim {
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut b = NetworkBuilder::new(topology)
        .seed(seed)
        .signalling_on_wire();
    if let Some(f) = faults {
        b = b
            .classical_faults(f)
            .track_timeout(SimDuration::from_secs(2));
    }
    let mut sim = b.build();
    let (head, tail) = (NodeId(0), NodeId(3));
    let vc = sim
        .open_circuit(head, tail, 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, head, tail, 0.8, n));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    sim
}

#[test]
fn wire_signalling_fault_free_completes_with_acked_tracks() {
    // With `signalling_on_wire` the INSTALL chain walks the path, every
    // PAIR_READY pays classical latency, and each endpoint TRACK is
    // acknowledged end-to-end. On a fault-free plane nothing is lost
    // and the request completes with every counter consistent. (TRACK
    // retransmits still fire: the end-to-end ack takes a full chain
    // round-trip, longer than the retransmit base — the receiver's
    // dedup absorbs the copies.)
    let sim = wired_chain_run(91, None, 6);
    let app = sim.app();
    assert!(app
        .completed
        .contains_key(&(qn_net::CircuitId(1), RequestId(1))));
    for node in [NodeId(0), NodeId(3)] {
        assert_eq!(
            app.confirmed_deliveries(qn_net::CircuitId(1), node, SimTime::ZERO, SimTime::MAX),
            6,
            "{node} must confirm all 6 pairs"
        );
    }
    let s = sim.classical_stats();
    // The hop-by-hop install chain acked at every hop, every endpoint
    // TRACK drew an ack, and nothing was lost on the wire.
    assert!(s.signal_acks >= 3, "install acks missing: {s:?}");
    assert!(s.track_acks > 0, "no TRACK acks on the wire");
    assert_eq!(s.dropped + s.corrupted, 0);
    assert_eq!(s.signal_retransmits, 0, "INSTALL acks are one hop: {s:?}");
    assert_eq!(s.request_retransmits, 0, "redundancy needs a lossy wire");
    assert_eq!(s.link_decode_failures + s.signal_decode_failures, 0);
}

#[test]
fn wire_signalling_survives_heavy_drops_exactly_once() {
    // The acceptance bar: 20% per-hop frame drops with signalling on
    // the wire. Lost INSTALLs are retransmitted hop-by-hop, lost
    // PAIR_READYs are reclaimed by the orphan timeout, lost TRACKs are
    // retransmitted by the originating end-node until acked — the
    // bounded request still completes with exactly n confirmed pairs
    // per end, never more, and no quantum memory leaks.
    let faults = ClassicalFaults {
        drop: 0.2,
        ..ClassicalFaults::OFF
    };
    let run = |seed| wired_chain_run(seed, Some(faults), 4);
    let mut sim = run(97);
    let app = sim.app();
    assert!(
        app.completed
            .contains_key(&(qn_net::CircuitId(1), RequestId(1))),
        "request did not complete under 20% drops"
    );
    for node in [NodeId(0), NodeId(3)] {
        assert_eq!(
            app.confirmed_deliveries(qn_net::CircuitId(1), node, SimTime::ZERO, SimTime::MAX),
            4,
            "{node}: over- or under-delivery under drops"
        );
    }
    let s = sim.classical_stats();
    assert!(s.dropped > 0, "no drops sampled");
    assert!(
        s.track_retransmits + s.signal_retransmits > 0,
        "drops this heavy must trigger retransmission: {s:?}"
    );
    // Determinism: the whole faulty wired run is a pure function of the
    // seed.
    let again = run(97);
    assert_eq!(trajectory(&sim), trajectory(&again));
    assert_eq!(sim.classical_stats(), again.classical_stats());
    assert_eq!(sim.node_stats(), again.node_stats());
    assert_eq!(sim.events_processed(), again.events_processed());
    // Drain: timeouts reclaim every orphaned pair.
    sim.run_until(sim.now() + SimDuration::from_secs(10));
    assert_eq!(sim.live_pairs(), 0, "pairs leaked under wire drops");
}

#[test]
fn jitter_changes_timing_but_not_correctness() {
    let run = |jitter_us: u64| -> usize {
        let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut sim = NetworkBuilder::new(topology)
            .seed(84)
            .message_jitter(SimDuration::from_micros(jitter_us))
            .build();
        let vc = sim
            .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 4));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        sim.app()
            .confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX)
    };
    assert_eq!(run(0), 4);
    assert_eq!(run(500), 4);
    assert_eq!(run(5_000), 4);
}
