//! Fidelity test rounds (paper §3.4 / §4.1): estimate the delivered
//! end-to-end fidelity *without* any oracle, purely from the statistics
//! of MEASURE-request test rounds in the X, Y and Z bases — then compare
//! against the simulation's ground truth to show the mechanism works.
//!
//! "It is physically impossible for the protocol to peek or measure the
//! delivered pairs to evaluate their fidelity. … The statistics of the
//! measurement outcomes can be used to estimate the fidelity of the
//! non-test pairs."
//!
//! ```sh
//! cargo run --release --example fidelity_estimation
//! ```

use qnp::netsim::FidelityEstimator;
use qnp::prelude::*;

fn main() {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(4096).build();
    let fidelity = 0.9;
    let vc = sim
        .open_circuit(d.a0, d.b0, fidelity, CutoffPolicy::short())
        .expect("plan");

    // Test rounds: MEASURE requests in the three Pauli bases.
    let rounds = 120u64;
    for (i, basis) in [Pauli::X, Pauli::Y, Pauli::Z].into_iter().enumerate() {
        sim.submit_at(
            SimTime::ZERO,
            vc,
            UserRequest {
                id: RequestId(i as u64 + 1),
                head: Address {
                    node: d.a0,
                    identifier: 1,
                },
                tail: Address {
                    node: d.b0,
                    identifier: 1,
                },
                min_fidelity: fidelity,
                demand: Demand::Pairs {
                    n: rounds,
                    deadline: None,
                },
                request_type: RequestType::Measure(basis),
                final_state: None,
            },
        );
    }
    // Non-test pairs: the KEEP request whose quality the test rounds are
    // meant to certify.
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            id: RequestId(10),
            head: Address {
                node: d.a0,
                identifier: 2,
            },
            tail: Address {
                node: d.b0,
                identifier: 2,
            },
            min_fidelity: fidelity,
            demand: Demand::Pairs {
                n: 40,
                deadline: None,
            },
            request_type: RequestType::Keep,
            final_state: None,
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(600));

    let app = sim.app();
    let alice = app.measurements(vc, d.a0);
    let bob = app.measurements(vc, d.b0);
    let mut est = FidelityEstimator::new();
    for (chain, a_out, a_basis, claimed) in &alice {
        if let Some((_, b_out, b_basis, _)) = bob.iter().find(|(c, _, _, _)| c == chain) {
            if a_basis == b_basis {
                est.record(*a_basis, *a_out, *b_out, *claimed);
            }
        }
    }
    let [rx, ry, rz] = est.rounds();
    println!("test rounds sifted: X={rx}, Y={ry}, Z={rz}");
    for basis in [Pauli::X, Pauli::Y, Pauli::Z] {
        println!(
            "  ⟨{basis:?}⊗{basis:?}⟩ (Φ+ frame) = {:+.3}",
            est.correlator(basis).unwrap_or(f64::NAN)
        );
    }
    let f_hat = est.estimate().expect("all bases sampled");
    let se = est.std_err().unwrap();
    let f_true = app.mean_fidelity(vc, d.a0).unwrap_or(f64::NAN);
    println!("\nestimate from test rounds : {f_hat:.3} ± {se:.3}");
    println!("oracle (simulation only)  : {f_true:.3}");
    println!("requested threshold       : {fidelity:.3}");
    if f_hat + 2.0 * se >= fidelity - 0.05 {
        println!("=> confidence that deliveries meet the class of service");
    } else {
        println!("=> the circuit is underperforming its fidelity class");
    }
}
