//! Request demultiplexing at the circuit end-nodes (paper §4.1
//! "Aggregation" and Appendix C.3 "Demultiplexing").
//!
//! A virtual circuit aggregates every request between the same end-points
//! at the same fidelity; the *demultiplexer* assigns each delivered pair
//! to a concrete request. We implement the **symmetric** strategy used in
//! the paper's simulations: both end-nodes run the same deterministic
//! round-robin over the same request set, accepting that transient
//! disagreement is possible; the TRACK cross-check catches mismatches and
//! the pair is discarded (or reassigned by higher layers).
//!
//! **Epochs** version the active request set: a new epoch is *created*
//! whenever a request arrives or completes, but only *activated* once the
//! head-end announces it on a TRACK message and the corresponding pair
//! delivers — keeping both ends' views change-aligned with the pair
//! stream rather than with message arrival times.

use crate::ids::{Epoch, RequestId};
use std::collections::BTreeMap;

/// Symmetric round-robin demultiplexer with epoch versioning.
#[derive(Clone, Debug)]
pub struct SymmetricDemux {
    /// Request sets per epoch; pruned as epochs retire.
    epochs: BTreeMap<Epoch, Vec<RequestId>>,
    active: Epoch,
    latest: Epoch,
    cursor: u64,
}

impl Default for SymmetricDemux {
    fn default() -> Self {
        Self::new()
    }
}

impl SymmetricDemux {
    /// A demultiplexer with an empty epoch 0.
    pub fn new() -> Self {
        let mut epochs = BTreeMap::new();
        epochs.insert(Epoch(0), Vec::new());
        SymmetricDemux {
            epochs,
            active: Epoch(0),
            latest: Epoch(0),
            cursor: 0,
        }
    }

    /// Create the next epoch by adding a request. Returns the new epoch.
    pub fn add_request(&mut self, id: RequestId) -> Epoch {
        let mut set = self.epochs[&self.latest].clone();
        if !set.contains(&id) {
            set.push(id);
        }
        self.latest = self.latest.next();
        self.epochs.insert(self.latest, set);
        self.maybe_auto_activate();
        self.latest
    }

    /// Create the next epoch by removing a request. Returns the new epoch.
    pub fn remove_request(&mut self, id: RequestId) -> Epoch {
        let mut set = self.epochs[&self.latest].clone();
        set.retain(|r| *r != id);
        self.latest = self.latest.next();
        self.epochs.insert(self.latest, set);
        self.maybe_auto_activate();
        self.latest
    }

    /// Activate an epoch announced on a TRACK message (monotone: earlier
    /// epochs never reactivate). Older epochs are pruned.
    pub fn activate(&mut self, epoch: Epoch) {
        if epoch > self.active && self.epochs.contains_key(&epoch) {
            self.active = epoch;
            let keep = self.active;
            self.epochs.retain(|e, _| *e >= keep);
        }
        self.maybe_auto_activate();
    }

    /// If the active set is empty but a later epoch has requests, jump
    /// forward. Without this, the very first request could never be
    /// served (epoch 0 is empty) — both ends apply the same deterministic
    /// rule, preserving symmetry.
    fn maybe_auto_activate(&mut self) {
        if !self.epochs[&self.active].is_empty() {
            return;
        }
        let next = self
            .epochs
            .range(self.active..)
            .find(|(_, set)| !set.is_empty())
            .map(|(e, _)| *e);
        if let Some(e) = next {
            self.active = e;
            let keep = self.active;
            self.epochs.retain(|ep, _| *ep >= keep);
        }
    }

    /// The epoch a head-end puts on its next TRACK (the newest view).
    pub fn latest(&self) -> Epoch {
        self.latest
    }

    /// Whether the newest (not necessarily active) request set still
    /// contains `id` — i.e. the request has not been retired yet. Used
    /// to absorb duplicated COMPLETEs: removing twice would fork a
    /// spurious epoch at one end only.
    pub fn in_latest(&self, id: RequestId) -> bool {
        self.epochs[&self.latest].contains(&id)
    }

    /// The currently active epoch.
    pub fn active(&self) -> Epoch {
        self.active
    }

    /// The active request set.
    pub fn active_set(&self) -> &[RequestId] {
        &self.epochs[&self.active]
    }

    /// Assign the next pair: deterministic round-robin over the active
    /// set. `None` when no requests are active.
    pub fn next_request(&mut self) -> Option<RequestId> {
        let set = &self.epochs[&self.active];
        if set.is_empty() {
            return None;
        }
        let pick = set[(self.cursor % set.len() as u64) as usize];
        self.cursor += 1;
        Some(pick)
    }

    /// Cross-check a local assignment against the request carried by the
    /// peer's TRACK message. A failure means the ends disagreed and the
    /// pair must be discarded (or reassigned).
    pub fn cross_check(&self, local: RequestId, remote: RequestId) -> bool {
        local == remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_demux_assigns_nothing() {
        let mut d = SymmetricDemux::new();
        assert_eq!(d.next_request(), None);
        assert_eq!(d.active(), Epoch(0));
    }

    #[test]
    fn first_request_auto_activates() {
        let mut d = SymmetricDemux::new();
        let e = d.add_request(RequestId(1));
        assert_eq!(e, Epoch(1));
        // Epoch 0 is empty, so epoch 1 auto-activates.
        assert_eq!(d.active(), Epoch(1));
        assert_eq!(d.next_request(), Some(RequestId(1)));
    }

    #[test]
    fn round_robin_over_active_set() {
        let mut d = SymmetricDemux::new();
        d.add_request(RequestId(1));
        d.add_request(RequestId(2));
        d.activate(d.latest());
        let picks: Vec<_> = (0..4).map(|_| d.next_request().unwrap()).collect();
        assert_eq!(
            picks,
            vec![RequestId(1), RequestId(2), RequestId(1), RequestId(2)]
        );
    }

    #[test]
    fn new_request_not_used_until_activated() {
        let mut d = SymmetricDemux::new();
        d.add_request(RequestId(1));
        // Request 2 arrives; set change is staged in a later epoch.
        d.add_request(RequestId(2));
        assert_eq!(d.active_set(), &[RequestId(1)]);
        assert_eq!(d.next_request(), Some(RequestId(1)));
        assert_eq!(d.next_request(), Some(RequestId(1)));
        // The head announces the new epoch and the pair delivers.
        d.activate(d.latest());
        let picks: Vec<_> = (0..2).map(|_| d.next_request().unwrap()).collect();
        assert!(picks.contains(&RequestId(2)));
    }

    #[test]
    fn removal_takes_effect_on_activation() {
        let mut d = SymmetricDemux::new();
        d.add_request(RequestId(1));
        d.add_request(RequestId(2));
        d.activate(d.latest());
        d.remove_request(RequestId(1));
        assert!(d.active_set().contains(&RequestId(1)), "not yet active");
        d.activate(d.latest());
        assert_eq!(d.active_set(), &[RequestId(2)]);
    }

    #[test]
    fn removing_last_request_leaves_empty_set() {
        let mut d = SymmetricDemux::new();
        d.add_request(RequestId(1));
        d.remove_request(RequestId(1));
        d.activate(d.latest());
        assert_eq!(d.next_request(), None);
    }

    #[test]
    fn activation_is_monotone() {
        let mut d = SymmetricDemux::new();
        d.add_request(RequestId(1));
        let e1 = d.latest();
        d.add_request(RequestId(2));
        let e2 = d.latest();
        d.activate(e2);
        d.activate(e1); // stale activation ignored
        assert_eq!(d.active(), e2);
    }

    #[test]
    fn two_ends_stay_consistent_under_same_inputs() {
        // The symmetry property: same operation sequence ⇒ same
        // assignment sequence at both ends.
        let mut head = SymmetricDemux::new();
        let mut tail = SymmetricDemux::new();
        for d in [&mut head, &mut tail] {
            d.add_request(RequestId(1));
            d.add_request(RequestId(2));
            d.add_request(RequestId(3));
            d.activate(Epoch(3));
        }
        for _ in 0..9 {
            assert_eq!(head.next_request(), tail.next_request());
        }
    }

    #[test]
    fn cross_check_detects_mismatch() {
        let d = SymmetricDemux::new();
        assert!(d.cross_check(RequestId(1), RequestId(1)));
        assert!(!d.cross_check(RequestId(1), RequestId(2)));
    }
}
