//! Reference model of per-circuit routing-table behaviour
//! (`qn_net::routing_table`), paper §4.1 "Routing table".
//!
//! A node's table maps circuits to [`RoutingEntry`] values; the QNP
//! derives the node's *role* on each circuit (head-end, tail-end,
//! intermediate) purely from which hops are present, and the rules
//! engine navigates with [`LinkSide`]. The production code under test
//! is [`RoutingEntry::role`] and [`LinkSide::opposite`] — exercised on
//! every install and query against the model's independent truth table
//! (the table container itself is deliberately a std map at both ends;
//! install/uninstall ops exist to drive overwrite and re-query
//! sequences, not to test `BTreeMap`).

use crate::ModelSpec;
use proptest::prelude::*;
use qn_link::LinkLabel;
use qn_net::ids::CircuitId;
use qn_net::{DownstreamHop, LinkSide, Role, RoutingEntry, UpstreamHop};
use qn_sim::{NodeId, SimDuration};
use std::collections::BTreeMap;

/// One operation on a node's routing table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableOp {
    /// Install (or overwrite) a circuit's entry. At least one of
    /// `upstream`/`downstream` must be set (enforced by precondition).
    Install {
        circuit: u8,
        upstream: bool,
        downstream: bool,
    },
    /// Tear down a circuit's entry.
    Uninstall { circuit: u8 },
    /// Query the node's role on a circuit and both side mappings.
    Query { circuit: u8 },
}

/// The reference: which hops each installed circuit has.
pub type TableModel = BTreeMap<u8, (bool, bool)>;

/// The system under test: real [`RoutingEntry`] values in a map.
pub type TableSystem = BTreeMap<u64, RoutingEntry>;

/// [`ModelSpec`] for routing-table role derivation.
pub struct RoutingSpec;

/// The §4.1 truth table: role from which hops are present.
fn expected_role(upstream: bool, downstream: bool) -> Role {
    match (upstream, downstream) {
        (false, true) => Role::HeadEnd,
        (true, false) => Role::TailEnd,
        (true, true) => Role::Intermediate,
        (false, false) => unreachable!("precondition forbids hopless entries"),
    }
}

fn entry(circuit: u8, upstream: bool, downstream: bool) -> RoutingEntry {
    RoutingEntry {
        circuit: CircuitId(u64::from(circuit)),
        upstream: upstream.then(|| UpstreamHop {
            node: NodeId(0),
            label: LinkLabel(u32::from(circuit)),
        }),
        downstream: downstream.then(|| DownstreamHop {
            node: NodeId(2),
            label: LinkLabel(u32::from(circuit)),
            min_fidelity: 0.9,
            max_lpr: 25.0,
        }),
        max_eer: 10.0,
        cutoff: SimDuration::from_millis(50),
    }
}

impl ModelSpec for RoutingSpec {
    type Op = TableOp;
    type Model = TableModel;
    type System = TableSystem;

    fn new_model(&self) -> TableModel {
        BTreeMap::new()
    }

    fn new_system(&self) -> TableSystem {
        BTreeMap::new()
    }

    fn op_strategy(&self) -> BoxedStrategy<TableOp> {
        prop_oneof![
            (0u8..6, any::<bool>(), any::<bool>()).prop_map(|(circuit, upstream, downstream)| {
                TableOp::Install {
                    circuit,
                    upstream,
                    downstream,
                }
            }),
            (0u8..6).prop_map(|circuit| TableOp::Uninstall { circuit }),
            (0u8..6).prop_map(|circuit| TableOp::Query { circuit }),
        ]
        .boxed()
    }

    fn precondition(&self, _model: &TableModel, op: &TableOp) -> bool {
        // An entry with no hops is invalid by construction (role()
        // panics); the signalling protocol never installs one.
        !matches!(
            op,
            TableOp::Install {
                upstream: false,
                downstream: false,
                ..
            }
        )
    }

    fn apply(
        &self,
        model: &mut TableModel,
        system: &mut TableSystem,
        op: &TableOp,
    ) -> Result<(), String> {
        match *op {
            TableOp::Install {
                circuit,
                upstream,
                downstream,
            } => {
                let e = entry(circuit, upstream, downstream);
                // Role derivation is checked at install time too, so
                // every install exercises the real `role()` code path.
                let expected = expected_role(upstream, downstream);
                if e.role() != expected {
                    return Err(format!(
                        "install(vc{circuit}): role() derived {:?}, model expected {expected:?}",
                        e.role()
                    ));
                }
                system.insert(u64::from(circuit), e);
                model.insert(circuit, (upstream, downstream));
                Ok(())
            }
            TableOp::Uninstall { circuit } => {
                let got = system.remove(&u64::from(circuit)).is_some();
                let expected = model.remove(&circuit).is_some();
                if got != expected {
                    return Err(format!(
                        "uninstall(vc{circuit}): system had entry: {got}, model: {expected}"
                    ));
                }
                Ok(())
            }
            TableOp::Query { circuit } => {
                let got = system.get(&u64::from(circuit)).map(|e| e.role());
                let expected = model
                    .get(&circuit)
                    .map(|(up, down)| expected_role(*up, *down));
                if got != expected {
                    return Err(format!(
                        "role(vc{circuit}): system {got:?}, model expected {expected:?}"
                    ));
                }
                // End-nodes have exactly one usable side; `opposite` must
                // be an involution wherever a side exists.
                for side in [LinkSide::Upstream, LinkSide::Downstream] {
                    if side.opposite().opposite() != side {
                        return Err(format!("LinkSide::opposite not an involution at {side:?}"));
                    }
                }
                Ok(())
            }
        }
    }

    fn invariants(&self, model: &TableModel, system: &TableSystem) -> Result<(), String> {
        if model.len() != system.len() {
            return Err(format!(
                "installed circuits: system {} vs model {}",
                system.len(),
                model.len()
            ));
        }
        Ok(())
    }
}
