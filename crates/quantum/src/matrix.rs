//! Dense complex matrices.
//!
//! The engine only ever manipulates matrices up to 16×16 (four qubits:
//! two entangled pairs joined for an entanglement swap), so a simple
//! row-major layout with O(n³) multiplication is the right tool — no
//! sparsity, no BLAS.
//!
//! Storage is allocation-free for the hot sizes: matrices of up to 16
//! entries (every 1- and 2-qubit gate, every Kraus operator, and — most
//! importantly — every 4×4 pair state) live inline in the struct; only
//! the 8×8/16×16 joint registers of swap and distillation circuits
//! spill to the heap, and the in-place kernels ([`CMatrix::mul_into`],
//! [`CMatrix::mul_dagger_into`]) let callers reuse those buffers across
//! operations. The inline capacity is deliberately *not* 16×16: a 4 KiB
//! always-inline matrix would make cloning pair states and building
//! 16-element Kraus sets far more expensive than the allocations it
//! avoids.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Entries stored inline (4×4 — a two-qubit pair state — and smaller).
const INLINE: usize = 16;

/// Row-major element storage: inline up to [`INLINE`] entries, heap
/// beyond.
#[derive(Clone)]
enum Data {
    Inline { len: u8, buf: [C64; INLINE] },
    Heap(Vec<C64>),
}

impl Data {
    fn zeros(n: usize) -> Data {
        if n <= INLINE {
            Data::Inline {
                len: n as u8,
                buf: [C64::ZERO; INLINE],
            }
        } else {
            Data::Heap(vec![C64::ZERO; n])
        }
    }

    fn from_vec(v: Vec<C64>) -> Data {
        if v.len() <= INLINE {
            let mut buf = [C64::ZERO; INLINE];
            buf[..v.len()].copy_from_slice(&v);
            Data::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            Data::Heap(v)
        }
    }

    #[inline]
    fn as_slice(&self) -> &[C64] {
        match self {
            Data::Inline { len, buf } => &buf[..*len as usize],
            Data::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [C64] {
        match self {
            Data::Inline { len, buf } => &mut buf[..*len as usize],
            Data::Heap(v) => v,
        }
    }
}

/// A dense complex matrix.
#[derive(Clone)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Data,
}

impl PartialEq for CMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.as_slice() == other.data.as_slice()
    }
}

impl CMatrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: Data::zeros(rows * cols),
        }
    }

    /// Reshape to `rows`×`cols` and zero every entry. Heap storage is
    /// sticky: once a buffer has grown past the inline capacity it
    /// keeps its allocation even when shrunk back to a small shape, so
    /// the per-thread scratch buffers that alternate between 4×4 pair
    /// ops and 16×16 swap registers never re-allocate.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.rows = rows;
        self.cols = cols;
        match &mut self.data {
            Data::Heap(v) => {
                v.clear();
                v.resize(n, C64::ZERO);
            }
            d => *d = Data::zeros(n),
        }
    }

    /// `out = a · b`, reusing `out`'s storage. Same arithmetic order as
    /// the allocating `Mul` impl (bit-identical results).
    pub fn mul_into(a: &CMatrix, b: &CMatrix, out: &mut CMatrix) {
        assert_eq!(a.cols, b.rows, "dimension mismatch in matrix product");
        out.reset_zeros(a.rows, b.cols);
        let bs = b.data.as_slice();
        let os = out.data.as_mut_slice();
        for i in 0..a.rows {
            for k in 0..a.cols {
                let x = a[(i, k)];
                if x == C64::ZERO {
                    continue;
                }
                let orow = i * b.cols;
                let brow = k * b.cols;
                for j in 0..b.cols {
                    os[orow + j] += x * bs[brow + j];
                }
            }
        }
    }

    /// `out = a · b†` without materialising `b†`, reusing `out`'s
    /// storage. Loop order matches `&a * &b.dagger()` exactly.
    pub fn mul_dagger_into(a: &CMatrix, b: &CMatrix, out: &mut CMatrix) {
        assert_eq!(a.cols, b.cols, "dimension mismatch in a·b†");
        out.reset_zeros(a.rows, b.rows);
        let os = out.data.as_mut_slice();
        for i in 0..a.rows {
            for k in 0..a.cols {
                let x = a[(i, k)];
                if x == C64::ZERO {
                    continue;
                }
                let orow = i * b.rows;
                for j in 0..b.rows {
                    os[orow + j] += x * b[(j, k)].conj();
                }
            }
        }
    }

    /// Entry-wise `self += other`.
    pub fn add_assign_mat(&mut self, other: &CMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let os = other.data.as_slice();
        for (a, b) in self.data.as_mut_slice().iter_mut().zip(os) {
            *a += *b;
        }
    }

    /// Entry-wise in-place scaling by a real factor.
    pub fn scale_in_place(&mut self, k: f64) {
        for z in self.data.as_mut_slice() {
            *z = z.scale(k);
        }
    }

    /// The n×n identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Build from nested row slices (for gate definitions and tests).
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data: Data::from_vec(data),
        }
    }

    /// Build from a flat row-major slice of real values.
    pub fn from_reals(rows: usize, cols: usize, vals: &[f64]) -> Self {
        assert_eq!(vals.len(), rows * cols);
        CMatrix {
            rows,
            cols,
            data: Data::from_vec(vals.iter().map(|v| C64::real(*v)).collect()),
        }
    }

    /// A column vector from a slice.
    pub fn col_vector(v: &[C64]) -> Self {
        CMatrix {
            rows: v.len(),
            cols: 1,
            data: Data::from_vec(v.to_vec()),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix trace.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square());
        (0..self.rows).fold(C64::ZERO, |acc, i| acc + self[(i, i)])
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Multiply every entry by a real scalar.
    pub fn scale(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: Data::from_vec(self.data.as_slice().iter().map(|z| z.scale(k)).collect()),
        }
    }

    /// Multiply every entry by a complex scalar.
    pub fn scale_c(&self, k: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: Data::from_vec(self.data.as_slice().iter().map(|z| *z * k).collect()),
        }
    }

    /// Hermiticity check within tolerance.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &CMatrix, eps: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .as_slice()
                .iter()
                .zip(other.data.as_slice())
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// Unitarity check `U†U ≈ I` within tolerance.
    pub fn is_unitary(&self, eps: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.approx_eq(&CMatrix::identity(self.rows), eps)
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[C64] {
        self.data.as_slice()
    }
}

/// Expand a `k`-qubit operator onto the given (distinct) target qubits
/// of an `n`-qubit space. The first target corresponds to the most
/// significant bit of the operator's index (qubit 0 = MSB, matching
/// [`crate::gates`]).
pub fn embed_op(n: usize, op: &CMatrix, targets: &[usize]) -> CMatrix {
    let mut out = CMatrix::zeros(1 << n, 1 << n);
    embed_op_into(n, op, targets, &mut out);
    out
}

/// [`embed_op`] writing into a caller-provided buffer.
pub fn embed_op_into(n: usize, op: &CMatrix, targets: &[usize], out: &mut CMatrix) {
    let k = targets.len();
    assert_eq!(op.rows(), 1 << k, "operator size mismatch");
    assert!(targets.iter().all(|q| *q < n), "target out of range");
    {
        let mut seen = 0usize;
        for q in targets {
            assert!(seen & (1 << q) == 0, "duplicate target {q}");
            seen |= 1 << q;
        }
    }
    let dim = 1usize << n;
    let target_mask: usize = targets.iter().map(|q| 1usize << (n - 1 - q)).sum();
    out.reset_zeros(dim, dim);
    for i in 0..dim {
        // Sub-index of i over the targets (first target = MSB).
        let mut ti = 0usize;
        for q in targets {
            ti = (ti << 1) | ((i >> (n - 1 - q)) & 1);
        }
        let rest = i & !target_mask;
        for tj in 0..(1usize << k) {
            let v = op[(ti, tj)];
            if v == C64::ZERO {
                continue;
            }
            let mut j = rest;
            for (pos, q) in targets.iter().enumerate() {
                let bit = (tj >> (k - 1 - pos)) & 1;
                j |= bit << (n - 1 - q);
            }
            out[(i, j)] = v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data.as_slice()[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        let cols = self.cols;
        &mut self.data.as_mut_slice()[i * cols + j]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        CMatrix::mul_into(self, rhs, &mut out);
        out
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: Data::from_vec(
                self.data
                    .as_slice()
                    .iter()
                    .zip(rhs.data.as_slice())
                    .map(|(a, b)| *a + *b)
                    .collect(),
            ),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: Data::from_vec(
                self.data
                    .as_slice()
                    .iter()
                    .zip(rhs.data.as_slice())
                    .map(|(a, b)| *a - *b)
                    .collect(),
            ),
        }
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> C64 {
        C64::real(v)
    }

    #[test]
    fn identity_multiplication() {
        let m = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = CMatrix::identity(2);
        assert!((&m * &i).approx_eq(&m, 1e-15));
        assert!((&i * &m).approx_eq(&m, 1e-15));
    }

    #[test]
    fn product_matches_hand_computation() {
        let a = CMatrix::from_reals(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = CMatrix::from_reals(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = &a * &b;
        let expect = CMatrix::from_reals(2, 2, &[58.0, 64.0, 139.0, 154.0]);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn dagger_of_complex_matrix() {
        let m = CMatrix::from_rows(&[
            &[C64::new(1.0, 2.0), C64::new(0.0, -1.0)],
            &[C64::new(3.0, 0.0), C64::new(0.0, 4.0)],
        ]);
        let d = m.dagger();
        assert_eq!(d[(0, 0)], C64::new(1.0, -2.0));
        assert_eq!(d[(0, 1)], C64::new(3.0, 0.0));
        assert_eq!(d[(1, 0)], C64::new(0.0, 1.0));
        assert_eq!(d[(1, 1)], C64::new(0.0, -4.0));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let b = CMatrix::from_reals(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        // I ⊗ X swaps within blocks.
        assert_eq!(k[(0, 1)], r(1.0));
        assert_eq!(k[(1, 0)], r(1.0));
        assert_eq!(k[(2, 3)], r(1.0));
        assert_eq!(k[(3, 2)], r(1.0));
        assert_eq!(k[(0, 0)], r(0.0));
    }

    #[test]
    fn trace_adds_diagonal() {
        let m = CMatrix::from_reals(3, 3, &[1.0, 9.0, 9.0, 9.0, 2.0, 9.0, 9.0, 9.0, 3.0]);
        assert_eq!(m.trace(), r(6.0));
    }

    #[test]
    fn hermitian_and_unitary_checks() {
        let h = CMatrix::from_rows(&[
            &[r(1.0), C64::new(0.0, -1.0)],
            &[C64::new(0.0, 1.0), r(2.0)],
        ]);
        assert!(h.is_hermitian(1e-12));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let had = CMatrix::from_reals(2, 2, &[s, s, s, -s]);
        assert!(had.is_unitary(1e-12));
        assert!(!CMatrix::from_reals(2, 2, &[1.0, 1.0, 0.0, 1.0]).is_unitary(1e-12));
    }

    #[test]
    fn mul_into_matches_allocating_mul() {
        let a = CMatrix::from_reals(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = CMatrix::from_reals(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = CMatrix::zeros(1, 1); // wrong shape: must be reset
        CMatrix::mul_into(&a, &b, &mut out);
        assert_eq!(out, &a * &b);
    }

    #[test]
    fn mul_dagger_into_matches_explicit_dagger() {
        let a = CMatrix::from_rows(&[
            &[C64::new(1.0, 2.0), C64::new(0.0, -1.0)],
            &[C64::new(3.0, 0.5), C64::new(0.0, 4.0)],
        ]);
        let b = CMatrix::from_rows(&[
            &[C64::new(0.5, -1.0), C64::new(2.0, 0.0)],
            &[C64::new(0.0, 1.5), C64::new(-1.0, 0.25)],
        ]);
        let mut out = CMatrix::zeros(2, 2);
        CMatrix::mul_dagger_into(&a, &b, &mut out);
        assert_eq!(out, &a * &b.dagger());
    }

    #[test]
    fn add_assign_and_scale_in_place() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = CMatrix::from_reals(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        let mut acc = a.clone();
        acc.add_assign_mat(&b);
        assert_eq!(acc, &a + &b);
        acc.scale_in_place(2.0);
        assert_eq!(acc, (&a + &b).scale(2.0));
    }

    #[test]
    fn reset_zeros_reuses_across_sizes() {
        let mut m = CMatrix::zeros(16, 16); // heap
        m[(3, 7)] = r(1.0);
        m.reset_zeros(2, 2); // shrink to inline-sized
        assert_eq!(m.rows(), 2);
        assert!(m.data().iter().all(|z| *z == C64::ZERO));
        m.reset_zeros(16, 16); // grow again
        assert_eq!(m.data().len(), 256);
        assert!(m.data().iter().all(|z| *z == C64::ZERO));
    }

    #[test]
    fn inline_and_heap_sized_matrices_compare_by_value() {
        // 4 entries (inline) vs 4 entries built through Vec paths.
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = &a + &CMatrix::zeros(2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn embed_op_identity_on_rest() {
        // X on qubit 1 of a 2-qubit space: I ⊗ X.
        let x = CMatrix::from_reals(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let full = embed_op(2, &x, &[1]);
        let expect = CMatrix::identity(2).kron(&x);
        assert!(full.approx_eq(&expect, 0.0));
    }

    #[test]
    fn kron_of_vectors() {
        let v0 = CMatrix::col_vector(&[C64::ONE, C64::ZERO]);
        let v1 = CMatrix::col_vector(&[C64::ZERO, C64::ONE]);
        let v01 = v0.kron(&v1);
        assert_eq!(v01.rows(), 4);
        assert_eq!(v01[(1, 0)], C64::ONE);
        assert_eq!(v01[(0, 0)], C64::ZERO);
    }
}
