//! Fig 11 — the near-future hardware scenario.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::build::NetworkBuilder;
use qn_routing::CircuitPlan;
use qn_sim::{NodeId, SimDuration, SimTime};

/// The hand-tuned Fig 11 circuit plan (paper §5.3: manual routing tables,
/// link fidelities "as high as possible", hand-tuned cutoff).
pub fn fig11_plan() -> CircuitPlan {
    CircuitPlan {
        path: vec![NodeId(0), NodeId(1), NodeId(2)],
        e2e_fidelity: 0.5,
        link_fidelity: 0.82,
        alpha: 0.1, // informational; the link layer solves α itself
        cutoff: SimDuration::from_millis(1500),
        max_lpr: 5.0,
        max_eer: 1.0,
    }
}

/// Fig 11: `n_pairs` pairs of fidelity 0.5 over a 3-node, 2 × 25 km
/// chain on near-term hardware. Returns `(arrival_times_s,
/// mean_fidelity)`.
pub fn fig11_scenario(seed: u64, n_pairs: u64) -> (Vec<f64>, f64) {
    let topology = qn_routing::chain(
        3,
        HardwareParams::near_term(),
        FibreParams::telecom(25_000.0),
    );
    let mut sim = NetworkBuilder::new(topology)
        .seed(seed)
        .near_term(2)
        .build();
    let vc = sim.install_plan(fig11_plan());
    sim.submit_at(
        SimTime::ZERO,
        vc,
        keep_request(1, NodeId(0), NodeId(2), 0.5, n_pairs),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
    let app = sim.app();
    let times: Vec<f64> = app
        .delivery_times(vc, NodeId(0))
        .iter()
        .map(|t| t.as_secs_f64())
        .collect();
    let fidelity = app.mean_fidelity(vc, NodeId(0)).unwrap_or(f64::NAN);
    (times, fidelity)
}
