//! Event-queue tests: model-based behaviour checking plus shrinkable
//! invariant properties.
//!
//! The primary test is the `qn_testkit` model test — random
//! push/cancel/pop/peek sequences run against both the heap-based
//! `EventQueue` and a flat-list reference model, comparing every
//! observable (this subsumes the old ad-hoc invariant properties: the
//! model predicts *exact* pop values, not just orderings). The plain
//! properties below are kept for the orderings they document.

use proptest::prelude::*;
use qn_sim::{EventQueue, SimTime};
use qn_testkit::models::queue::QueueSpec;
use qn_testkit::ModelTest;

/// Random operation sequences: the queue must agree with the reference
/// model on every pop, peek, cancel result and length. Divergences
/// shrink to a minimal operation sequence.
#[test]
fn queue_matches_reference_model() {
    ModelTest::new("sim_queue_matches_model", QueueSpec)
        .cases(192)
        .max_ops(64)
        .run();
}

proptest! {
    /// Popped events are globally ordered by (time, insertion seq).
    #[test]
    fn pop_order_is_time_then_fifo(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal times");
                }
            }
            prop_assert_eq!(SimTime::from_ps(times[idx]), t);
            last = Some((t, idx));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exact_subset(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.push(SimTime::from_ps(*t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            let cancel = cancel_mask.get(*i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(*i);
            }
        }
        prop_assert_eq!(q.len(), expected.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, idx)) = q.pop() {
            popped.push(idx);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }
}
